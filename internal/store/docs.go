package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/open-metadata/xmit/internal/meta"
)

// The document tier persists fetched metadata documents for
// discovery.Repository (which consumes it through the discovery.DocStore
// interface, keeping the import pointing this way).  Each URL gets a small
// JSON index entry under docs/ recording the URL, its payload's content
// hash, and the HTTP validators; the payload itself lives in the CAS, so
// two URLs serving identical bytes share one blob.  Index entries are
// written temp+rename like everything else.

type docEntry struct {
	URL          string `json:"url"`
	Blob         string `json:"blob"` // 16-hex content hash of the payload
	ETag         string `json:"etag,omitempty"`
	LastModified string `json:"last_modified,omitempty"`
	FetchedAt    int64  `json:"fetched_at"` // unix nanoseconds
}

func (s *Store) docPath(url string) string {
	return filepath.Join(s.dir, "docs", HashBytes([]byte(url)).String()+".json")
}

// StoreDocument persists one fetched document: payload into the CAS,
// index entry (URL, content hash, validators, fetch time) under docs/.
func (s *Store) StoreDocument(url string, data []byte, etag, lastModified string, fetchedAt time.Time) error {
	blob, err := s.PutBlob(data)
	if err != nil {
		return err
	}
	e := docEntry{
		URL: url, Blob: blob.String(), ETag: etag,
		LastModified: lastModified, FetchedAt: fetchedAt.UnixNano(),
	}
	buf, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.writeFileAtomic(s.docPath(url), buf); err != nil {
		return err
	}
	s.stats.docPuts.Inc()
	return nil
}

// LoadDocument returns the persisted copy of a URL's document, if any.
// The payload is verified against its content hash on the way out; an
// index entry whose URL does not match (a hash collision) or whose blob is
// missing or corrupt is a miss, never a wrong answer.
func (s *Store) LoadDocument(url string) (data []byte, etag, lastModified string, fetchedAt time.Time, ok bool) {
	buf, err := os.ReadFile(s.docPath(url))
	if err != nil {
		return nil, "", "", time.Time{}, false
	}
	var e docEntry
	if json.Unmarshal(buf, &e) != nil || e.URL != url {
		return nil, "", "", time.Time{}, false
	}
	var id uint64
	if _, err := fmt.Sscanf(e.Blob, "%016x", &id); err != nil {
		return nil, "", "", time.Time{}, false
	}
	data, err = s.GetBlob(meta.FormatID(id))
	if err != nil {
		return nil, "", "", time.Time{}, false
	}
	s.stats.docHits.Inc()
	return data, e.ETag, e.LastModified, time.Unix(0, e.FetchedAt), true
}

// Documents lists every URL with a persisted document — the warm-cache
// enumeration a cold-starting Repository iterates.
func (s *Store) Documents() []string {
	entries, err := os.ReadDir(filepath.Join(s.dir, "docs"))
	if err != nil {
		return nil
	}
	var out []string
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		buf, err := os.ReadFile(filepath.Join(s.dir, "docs", ent.Name()))
		if err != nil {
			continue
		}
		var e docEntry
		if json.Unmarshal(buf, &e) == nil && e.URL != "" {
			out = append(out, e.URL)
		}
	}
	return out
}
