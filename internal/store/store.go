// Package store implements the persistent tier of the metadata path: a
// disk-backed content-addressed store (CAS) for canonical format bytes and
// fetched metadata documents, plus an append-only journal and snapshot that
// make a schema registry's lineage histories, compatibility policies, and
// head decisions survive process restarts.
//
// The paper's central economy is paying the metadata cost once and
// amortizing it across a run; without persistence every restart re-pays the
// Remote Discovery Multiplier per format.  The store closes that hole:
//
//   - Blobs are keyed by the same 64-bit FNV-1a content hash that names
//     formats (meta.FormatID), so a format blob's key IS its FormatID and
//     any blob is self-verifying on read.  Writes go to a temp file in the
//     same directory and are renamed into place, so a crash never leaves a
//     torn blob under a valid key.
//   - Each format blob carries a plan manifest (plans/<id>.json): the
//     compiled-plan metadata — name, platform, layout facts, provenance —
//     that lets a cold start enumerate and filter thousands of stored
//     formats without parsing every blob.
//   - Fetched metadata documents are indexed by URL (docs/<urlhash>.json)
//     with their payload deduplicated into the CAS, giving
//     discovery.Repository a persistent cache tier: a cold start warms
//     every known document from local disk and pays zero remote fetches.
//   - The registry journal (journal) records every lineage append and
//     policy change as a CRC-framed record; the snapshot (snapshot.xml)
//     is the full-body lineage document inside a checksummed envelope.
//     Recovery tolerates a truncated journal tail (replay stops at the
//     last clean record and the tail is cut) and a torn snapshot (fall
//     back to the previous snapshot plus journal replay).  Replay is
//     idempotent, so the journal/snapshot overlap after compaction races
//     or crashes is harmless.
//
// Layout under the store directory:
//
//	blobs/<hh>/<16-hex>   content-addressed blobs (hh = first hash byte)
//	plans/<16-hex>.json   per-format plan manifests
//	docs/<16-hex>.json    per-URL document index entries
//	journal               append-only registry journal
//	snapshot.xml          newest registry snapshot (envelope-framed)
//	snapshot.prev         previous snapshot, the torn-snapshot fallback
package store

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/open-metadata/xmit/internal/meta"
	"github.com/open-metadata/xmit/internal/obs"
)

// maxBlobSize bounds one stored blob; metadata documents and canonical
// formats are small, so anything larger is corruption or abuse.
const maxBlobSize = 8 << 20

// Store is a disk-backed content-addressed store rooted at one directory.
// It is safe for concurrent use: blob writes are independent temp+rename
// operations, and journal appends serialise on an internal mutex.
type Store struct {
	dir      string
	syncEach bool

	metrics *obs.Registry
	stats   storeStats

	mu      sync.Mutex // guards the journal file and snapshot rotation
	journal *os.File

	// err latches the first persistence failure on the observer path,
	// which has no error return (see Err).
	err atomic.Pointer[error]
}

type storeStats struct {
	blobPuts      *obs.Counter // store_blob_put_total: new blobs written
	blobDedup     *obs.Counter // store_blob_dedup_total: puts satisfied by an existing blob
	blobGets      *obs.Counter // store_blob_get_total: blob reads served
	blobCorrupt   *obs.Counter // store_blob_corrupt_total: blobs failing content-hash verification
	docPuts       *obs.Counter // store_doc_put_total: document index writes
	docHits       *obs.Counter // store_doc_hit_total: document loads served
	journalRecs   *obs.Counter // store_journal_record_total: records appended
	journalErrs   *obs.Counter // store_journal_error_total: failed appends (observer path)
	journalTrunc  *obs.Counter // store_journal_truncated_total: torn tails cut at open
	snapFallbacks *obs.Counter // store_snapshot_fallback_total: torn snapshots skipped at recovery
	recovered     *obs.Counter // store_recover_version_total: lineage versions recovered
}

// Option configures a Store.
type Option func(*Store)

// WithSync controls whether blob writes and journal appends fsync before
// returning (default true).  Disabling trades crash durability for write
// throughput — reasonable for caches, wrong for the registry journal.
func WithSync(sync bool) Option {
	return func(s *Store) { s.syncEach = sync }
}

// WithMetricsRegistry directs the store's metrics into reg instead of the
// process-wide obs.Default() registry.
func WithMetricsRegistry(reg *obs.Registry) Option {
	return func(s *Store) { s.metrics = reg }
}

// Open opens (creating if necessary) the store rooted at dir.  Leftover
// temp files from crashed writes are swept, and a torn journal tail is
// truncated to the last clean record so subsequent appends extend a
// consistent log.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{dir: dir, syncEach: true, metrics: obs.Default()}
	for _, o := range opts {
		o(s)
	}
	m := s.metrics
	s.stats = storeStats{
		blobPuts:      m.Counter("store_blob_put_total"),
		blobDedup:     m.Counter("store_blob_dedup_total"),
		blobGets:      m.Counter("store_blob_get_total"),
		blobCorrupt:   m.Counter("store_blob_corrupt_total"),
		docPuts:       m.Counter("store_doc_put_total"),
		docHits:       m.Counter("store_doc_hit_total"),
		journalRecs:   m.Counter("store_journal_record_total"),
		journalErrs:   m.Counter("store_journal_error_total"),
		journalTrunc:  m.Counter("store_journal_truncated_total"),
		snapFallbacks: m.Counter("store_snapshot_fallback_total"),
		recovered:     m.Counter("store_recover_version_total"),
	}
	for _, sub := range []string{"", "blobs", "plans", "docs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s.sweepTemp()
	if err := s.openJournal(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close closes the journal file.  Blobs need no teardown.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

// Err returns the first persistence failure recorded on the observer path
// (journal appends and blob writes triggered by registry mutations have no
// error return), or nil.  A daemon can poll this to surface a dying disk.
func (s *Store) Err() error {
	if p := s.err.Load(); p != nil {
		return *p
	}
	return nil
}

func (s *Store) noteErr(err error) {
	s.stats.journalErrs.Inc()
	s.err.CompareAndSwap(nil, &err)
}

// sweepTemp removes temp files left by writes that crashed before rename.
// A temp file is never referenced by any key, so sweeping is always safe.
func (s *Store) sweepTemp() {
	_ = filepath.Walk(s.dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".tmp") {
			os.Remove(path)
		}
		return nil
	})
}

// HashBytes returns the store key for a blob: FNV-1a 64 over its content —
// the same function meta.Format.ID applies to canonical format bytes, so a
// format blob's key is its FormatID.
func HashBytes(data []byte) meta.FormatID {
	h := fnv.New64a()
	h.Write(data)
	return meta.FormatID(h.Sum64())
}

func (s *Store) blobPath(id meta.FormatID) string {
	hex := id.String()
	return filepath.Join(s.dir, "blobs", hex[:2], hex)
}

// PutBlob stores data under its content hash.  Putting content already in
// the store is a cheap no-op (content-addressing makes dedup free).  The
// write is crash-safe: temp file in the destination directory, then rename.
func (s *Store) PutBlob(data []byte) (meta.FormatID, error) {
	if len(data) > maxBlobSize {
		return 0, fmt.Errorf("store: blob exceeds %d bytes", maxBlobSize)
	}
	id := HashBytes(data)
	path := s.blobPath(id)
	if _, err := os.Stat(path); err == nil {
		s.stats.blobDedup.Inc()
		return id, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if err := s.writeFileAtomic(path, data); err != nil {
		return 0, err
	}
	s.stats.blobPuts.Inc()
	return id, nil
}

// writeFileAtomic writes data to path via a same-directory temp file and
// rename, optionally fsyncing before the rename (WithSync).
func (s *Store) writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing %s: %w", path, err)
	}
	if s.syncEach {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: syncing %s: %w", path, err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// GetBlob returns the blob stored under id, verifying its content hash: a
// blob that does not hash back to its key (disk corruption) is an error,
// never silently served.
func (s *Store) GetBlob(id meta.FormatID) ([]byte, error) {
	data, err := os.ReadFile(s.blobPath(id))
	if err != nil {
		return nil, fmt.Errorf("store: blob %s: %w", id, err)
	}
	if HashBytes(data) != id {
		s.stats.blobCorrupt.Inc()
		return nil, fmt.Errorf("store: blob %s corrupt: content hashes to %s", id, HashBytes(data))
	}
	s.stats.blobGets.Inc()
	return data, nil
}

// HasBlob reports whether a blob is stored under id.
func (s *Store) HasBlob(id meta.FormatID) bool {
	_, err := os.Stat(s.blobPath(id))
	return err == nil
}

// PlanMeta is the compiled-plan manifest stored beside each format blob:
// the facts a marshal-plan compiler needs as input (layout, platform,
// field count) plus provenance, available to a cold start without parsing
// the canonical bytes.
type PlanMeta struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Platform    string `json:"platform"`
	Fields      int    `json:"fields"`
	Size        int    `json:"size"`
	Align       int    `json:"align"`
	BigEndian   bool   `json:"big_endian"`
	PointerSize int    `json:"pointer_size"`
	Source      string `json:"source,omitempty"`
	StoredAt    int64  `json:"stored_at"` // unix nanoseconds
}

func (s *Store) planPath(id meta.FormatID) string {
	return filepath.Join(s.dir, "plans", id.String()+".json")
}

// PutFormat stores a format's canonical bytes in the CAS and writes its
// plan manifest.  The returned ID is the format's content hash — the same
// value f.ID() computes.  Idempotent.
func (s *Store) PutFormat(f *meta.Format, source string) (meta.FormatID, error) {
	id, err := s.PutBlob(f.Canonical())
	if err != nil {
		return 0, err
	}
	planPath := s.planPath(id)
	if _, err := os.Stat(planPath); err == nil {
		return id, nil
	}
	pm := PlanMeta{
		ID: id.String(), Name: f.Name, Platform: f.Platform,
		Fields: len(f.Fields), Size: f.Size, Align: f.Align,
		BigEndian: f.BigEndian, PointerSize: f.PointerSize,
		Source: source, StoredAt: time.Now().UnixNano(),
	}
	data, err := json.Marshal(pm)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	if err := s.writeFileAtomic(planPath, data); err != nil {
		return 0, err
	}
	return id, nil
}

// GetFormat loads and parses the canonical format stored under id.  The
// parse re-validates the format, and GetBlob verified the content hash, so
// a returned format is exactly what was stored.
func (s *Store) GetFormat(id meta.FormatID) (*meta.Format, error) {
	data, err := s.GetBlob(id)
	if err != nil {
		return nil, err
	}
	f, err := meta.ParseCanonical(data)
	if err != nil {
		return nil, fmt.Errorf("store: blob %s: %w", id, err)
	}
	return f, nil
}

// PlanMetaFor returns the plan manifest stored for a format blob, if any.
func (s *Store) PlanMetaFor(id meta.FormatID) (PlanMeta, bool) {
	data, err := os.ReadFile(s.planPath(id))
	if err != nil {
		return PlanMeta{}, false
	}
	var pm PlanMeta
	if err := json.Unmarshal(data, &pm); err != nil {
		return PlanMeta{}, false
	}
	return pm, true
}

// FormatIDs lists every format blob in the store (every blob with a plan
// manifest), in no particular order — the cold-start enumeration.
func (s *Store) FormatIDs() ([]meta.FormatID, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "plans"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []meta.FormatID
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), ".json")
		if len(name) != 16 || name == e.Name() {
			continue
		}
		var id uint64
		if _, err := fmt.Sscanf(name, "%016x", &id); err != nil {
			continue
		}
		out = append(out, meta.FormatID(id))
	}
	return out, nil
}
