package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"github.com/open-metadata/xmit/internal/meta"
)

// The registry journal is a flat append-only file of CRC-framed records:
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// payload:
//
//	byte kind (1 = append, 2 = policy)
//	kind 1: u8 flags (bit0: adopted) | str lineage | u64 format ID |
//	        str source | i64 registration unix-nanos
//	kind 2: str lineage | str policy wire name
//
// where str is a u16 big-endian length followed by that many bytes.  The
// framing makes a torn tail detectable: a record whose declared length runs
// past EOF, whose CRC mismatches, or whose payload underflows ends the
// journal at the last clean record.  Everything before it replays; the tail
// is cut on open so later appends extend a consistent log.
//
// A journal record for a lineage append references the format by content
// hash only — the body lives in the blob store, written *before* the
// journal record, so a record present in the journal always has its blob
// (a crash between the two leaves an unreferenced blob, which dedup makes
// harmless).

const (
	journalName      = "journal"
	maxJournalRecord = 1 << 20
	journalHeader    = 8 // u32 length + u32 crc
)

// RecordKind discriminates journal records.
type RecordKind byte

const (
	// RecordAppend is a version appended to a lineage (Register or Adopt).
	RecordAppend RecordKind = 1
	// RecordPolicy is a committed compatibility-policy change.
	RecordPolicy RecordKind = 2
)

// JournalRecord is one decoded registry-journal record.
type JournalRecord struct {
	Kind    RecordKind
	Lineage string
	// Append fields.
	ID           meta.FormatID
	Source       string
	Adopted      bool
	RegisteredAt time.Time
	// Policy field (wire name, see registry.ParsePolicy).
	Policy string
}

const flagAdopted = 1 << 0

// AppendJournalRecord appends the framed encoding of r to buf.
func AppendJournalRecord(buf []byte, r JournalRecord) ([]byte, error) {
	payload := []byte{byte(r.Kind)}
	switch r.Kind {
	case RecordAppend:
		var flags byte
		if r.Adopted {
			flags |= flagAdopted
		}
		payload = append(payload, flags)
		payload = appendJStr(payload, r.Lineage)
		payload = binary.BigEndian.AppendUint64(payload, uint64(r.ID))
		payload = appendJStr(payload, r.Source)
		payload = binary.BigEndian.AppendUint64(payload, uint64(r.RegisteredAt.UnixNano()))
	case RecordPolicy:
		payload = appendJStr(payload, r.Lineage)
		payload = appendJStr(payload, r.Policy)
	default:
		return nil, fmt.Errorf("store: unknown journal record kind %d", r.Kind)
	}
	if len(payload) > maxJournalRecord {
		return nil, fmt.Errorf("store: journal record exceeds %d bytes", maxJournalRecord)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...), nil
}

func appendJStr(buf []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	buf = append(buf, byte(len(s)>>8), byte(len(s)))
	return append(buf, s...)
}

// DecodeJournal decodes every clean record in data.  clean is the byte
// offset just past the last clean record; truncated reports whether bytes
// past clean exist but do not form a valid record (a torn tail — or
// corruption, which is treated the same way: the journal ends at the last
// record that checks out).  DecodeJournal never panics on any input.
func DecodeJournal(data []byte) (recs []JournalRecord, clean int, truncated bool) {
	pos := 0
	for pos < len(data) {
		if len(data)-pos < journalHeader {
			return recs, pos, true
		}
		n := int(binary.BigEndian.Uint32(data[pos:]))
		crc := binary.BigEndian.Uint32(data[pos+4:])
		if n > maxJournalRecord || n > len(data)-pos-journalHeader {
			return recs, pos, true
		}
		payload := data[pos+journalHeader : pos+journalHeader+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, pos, true
		}
		rec, ok := decodeJournalPayload(payload)
		if !ok {
			return recs, pos, true
		}
		recs = append(recs, rec)
		pos += journalHeader + n
	}
	return recs, pos, false
}

func decodeJournalPayload(p []byte) (JournalRecord, bool) {
	if len(p) < 1 {
		return JournalRecord{}, false
	}
	r := JournalRecord{Kind: RecordKind(p[0])}
	p = p[1:]
	var ok bool
	switch r.Kind {
	case RecordAppend:
		if len(p) < 1 {
			return JournalRecord{}, false
		}
		r.Adopted = p[0]&flagAdopted != 0
		p = p[1:]
		if r.Lineage, p, ok = readJStr(p); !ok {
			return JournalRecord{}, false
		}
		if len(p) < 8 {
			return JournalRecord{}, false
		}
		r.ID = meta.FormatID(binary.BigEndian.Uint64(p))
		p = p[8:]
		if r.Source, p, ok = readJStr(p); !ok {
			return JournalRecord{}, false
		}
		if len(p) != 8 {
			return JournalRecord{}, false
		}
		r.RegisteredAt = time.Unix(0, int64(binary.BigEndian.Uint64(p)))
	case RecordPolicy:
		if r.Lineage, p, ok = readJStr(p); !ok {
			return JournalRecord{}, false
		}
		if r.Policy, p, ok = readJStr(p); !ok || len(p) != 0 {
			return JournalRecord{}, false
		}
	default:
		return JournalRecord{}, false
	}
	return r, true
}

func readJStr(p []byte) (string, []byte, bool) {
	if len(p) < 2 {
		return "", nil, false
	}
	n := int(p[0])<<8 | int(p[1])
	if len(p)-2 < n {
		return "", nil, false
	}
	return string(p[2 : 2+n]), p[2+n:], true
}

func (s *Store) journalPath() string { return filepath.Join(s.dir, journalName) }

// openJournal opens the journal for appending, first cutting any torn tail
// so the next append extends a consistent log.
func (s *Store) openJournal() error {
	path := s.journalPath()
	if data, err := os.ReadFile(path); err == nil {
		_, clean, truncated := DecodeJournal(data)
		if truncated {
			s.stats.journalTrunc.Inc()
			if err := os.Truncate(path, int64(clean)); err != nil {
				return fmt.Errorf("store: cutting torn journal tail: %w", err)
			}
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	s.journal = f
	s.mu.Unlock()
	return nil
}

// appendJournal frames and appends one record, fsyncing when WithSync is
// on.  The frame is written in a single Write so a crash tears at most one
// record — exactly what DecodeJournal's tail handling recovers from.
func (s *Store) appendJournal(r JournalRecord) error {
	frame, err := AppendJournalRecord(nil, r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return fmt.Errorf("store: journal closed")
	}
	if _, err := s.journal.Write(frame); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if s.syncEach {
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("store: journal sync: %w", err)
		}
	}
	s.stats.journalRecs.Inc()
	return nil
}

// ReadJournal decodes the on-disk journal.  Exposed for recovery, tests,
// and the coldstart bench.
func (s *Store) ReadJournal() (recs []JournalRecord, truncated bool, err error) {
	data, err := os.ReadFile(s.journalPath())
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	recs, _, truncated = DecodeJournal(data)
	return recs, truncated, nil
}
