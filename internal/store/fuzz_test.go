package store

import (
	"bytes"
	"testing"
)

// FuzzJournal throws arbitrary bytes at the journal decoder and holds it to
// the recovery contract: never panic, report a clean offset that re-encodes
// to exactly the bytes it accepted (so truncating at clean and replaying is
// lossless and idempotent), and flag everything past it as a torn tail.
func FuzzJournal(f *testing.F) {
	seed, err := AppendJournalRecord(nil, JournalRecord{
		Kind: RecordPolicy, Lineage: "metric", Policy: "backward",
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-2])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean, truncated := DecodeJournal(data)
		if clean < 0 || clean > len(data) {
			t.Fatalf("clean offset %d outside [0, %d]", clean, len(data))
		}
		if truncated == (clean == len(data)) {
			t.Fatalf("truncated=%v with clean=%d of %d bytes", truncated, clean, len(data))
		}
		// Clean records re-encode to exactly the accepted prefix: the
		// journal's encoding is canonical, so replay after a tail cut sees
		// the same records a pre-crash reader saw.
		var enc []byte
		for _, r := range recs {
			var err error
			if enc, err = AppendJournalRecord(enc, r); err != nil {
				t.Fatalf("re-encoding decoded record: %v", err)
			}
		}
		if !bytes.Equal(enc, data[:clean]) {
			t.Fatalf("re-encode of %d records is %d bytes, accepted prefix %d", len(recs), len(enc), clean)
		}
		// And decoding the re-encoding is a fixed point (idempotent replay).
		recs2, clean2, trunc2 := DecodeJournal(enc)
		if len(recs2) != len(recs) || clean2 != len(enc) || trunc2 {
			t.Fatalf("re-decode: %d records, clean %d, truncated %v; want %d, %d, false",
				len(recs2), clean2, trunc2, len(recs), len(enc))
		}
	})
}

// FuzzSnapshot holds the snapshot envelope to its torn-detection contract:
// never panic, and accept only inputs that are the canonical encoding of
// their payload — anything else must fail (and recovery then falls back).
func FuzzSnapshot(f *testing.F) {
	f.Add(EncodeSnapshot([]byte("<lineages/>")))
	f.Add(EncodeSnapshot(nil))
	f.Add([]byte("XSNP1junk"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeSnapshot(payload), data) {
			t.Fatalf("accepted %d bytes that are not the canonical envelope of their %d-byte payload",
				len(data), len(payload))
		}
	})
}
