package conform

import "testing"

// FuzzRoundTrip fuzzes over the case-seed space: every seed generates a
// (format, value) pair that must round-trip identically through every
// codec and every platform pair.  The property is total — there is no
// rejected input — so the fuzzer explores format shapes, not byte syntax.
// The seed corpus pins the three seeds that historically exposed codec
// bugs (xdr 8-byte enums, mpidt wide booleans, xmlwire carriage returns).
func FuzzRoundTrip(f *testing.F) {
	for _, seed := range []int64{1, 8, 15, 41, GoldenSeed} {
		f.Add(seed)
	}
	h := NewHarness()
	f.Fuzz(func(t *testing.T, seed int64) {
		s, tree := GenCase(seed)
		for _, d := range h.mustCheck(s, tree) {
			t.Errorf("seed %d: %s (replay: xmitconform -seed %d -n 1)", seed, d.String(), seed)
		}
	})
}
