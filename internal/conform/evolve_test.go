package conform

import (
	"math/rand"
	"testing"

	"github.com/open-metadata/xmit/internal/registry"
)

// TestEvolveAxis runs the evolution axis proper: generated policy-admitted
// lineages, registry acceptance, differential projection against the tree
// reference, and the per-chain negative control.
func TestEvolveAxis(t *testing.T) {
	chains := 48
	if testing.Short() {
		chains = 12
	}
	h := NewHarness()
	st, err := h.RunEvolve(1, chains, EvolveSteps)
	if err != nil {
		t.Fatal(err)
	}
	if st.Chains != chains || st.Pairs == 0 || st.Checks == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Every chain crosses the simulated broker boundary at least once; full
	// chains cross twice.
	if st.MeshLegs < chains {
		t.Fatalf("mesh legs = %d, want >= %d (stats %+v)", st.MeshLegs, chains, st)
	}
}

// TestRandomEvolveChainShape pins structural invariants of generated chains:
// version count, stable name, and that every adjacent step is admitted by
// the chain's policy (checked via a fresh registry per chain).
func TestRandomEvolveChainShape(t *testing.T) {
	h := NewHarness()
	for seed := int64(100); seed < 120; seed++ {
		r := rand.New(rand.NewSource(seed))
		policy := evolvePolicies[int(seed)%len(evolvePolicies)]
		chain := RandomEvolveChain(r, "m", DefaultGen, 4, policy)
		if len(chain.Specs) != 5 {
			t.Fatalf("seed %d: %d versions, want 5", seed, len(chain.Specs))
		}
		reg := registry.New(registry.WithDefaultPolicy(policy))
		for v, s := range chain.Specs {
			if s.Name != "m" {
				t.Fatalf("seed %d v%d: name %q", seed, v+1, s.Name)
			}
			cs, err := s.Compile(h.Plats[:1])
			if err != nil {
				t.Fatalf("seed %d v%d: %v", seed, v+1, err)
			}
			if _, err := reg.Register("m", cs.Format(h.Plats[0].Name), "test"); err != nil {
				t.Fatalf("seed %d v%d rejected under %s: %v", seed, v+1, policy, err)
			}
		}
	}
}

// TestProjectTreeZeroFill: a projection onto a version with added fields
// reports exactly the zero tree for them.
func TestProjectTreeZeroFill(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	src := RandomSpec(r, "z", DefaultGen)
	dst := src.clone()
	seq := 0
	for i := 0; i < 4; i++ {
		addField(r, dst, DefaultGen, &seq)
	}
	tree := RandomValue(r, src)
	got, err := ProjectTree(src, dst, tree)
	if err != nil {
		t.Fatal(err)
	}
	zero := dst.ZeroTree()
	n := len(src.nonLengthFields())
	if len(got) != len(zero) {
		t.Fatalf("projected %d entries, dst has %d", len(got), len(zero))
	}
	for k := n; k < len(got); k++ {
		if !EqualTrees([]any{got[k]}, []any{zero[k]}) {
			t.Errorf("added field slot %d = %v, want zero %v", k, got[k], zero[k])
		}
	}
}
