package conform

import (
	"strings"

	"github.com/open-metadata/xmit/internal/meta"
)

// Minimize greedily shrinks a failing (spec, value) pair while the harness
// still reports a disagreement, so the reproduction printed with the seed is
// the smallest format this minimizer can reach: drop fields (at any nesting
// depth), shrink arrays, zero scalar values.  The input pair is not
// modified; every candidate is a deep copy.
func (h *Harness) Minimize(s *Spec, tree []any) (*Spec, []any) {
	cur, curTree := cloneSpec(s), cloneTree(tree)
	fails := func(c *Spec, t []any) bool { return len(h.mustCheck(c, t)) > 0 }
	if !fails(cur, curTree) {
		return cur, curTree // not reproducible in isolation; report as-is
	}
	for round := 0; round < 200; round++ {
		improved := false
		for _, e := range edits(cur) {
			cand := e.adapt(cloneTree(curTree))
			if fails(e.spec, cand) {
				cur, curTree = e.spec, cand
				improved = true
				break
			}
		}
		if improved {
			continue
		}
		// Structural fixpoint reached: try zeroing value leaves (tree-only
		// candidates; each leaf zeroes at most once, so this terminates).
		for _, cand := range zeroEdits(cur, curTree) {
			if fails(cur, cand) {
				curTree = cand
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return cur, curTree
}

// edit is one structural shrink candidate: a smaller spec plus the function
// mapping a value tree of the old spec onto the new one.
type edit struct {
	spec  *Spec
	adapt func([]any) []any
}

// edits enumerates single-step structural shrinks of s at every depth:
// field removals, dynamic-group length shrinks, static-dimension shrinks.
func edits(s *Spec) []edit {
	var out []edit
	for j := range s.Fields {
		if e, ok := removeField(s, j); ok {
			out = append(out, e)
		}
	}
	out = append(out, shrinkEdits(s)...)
	out = append(out, descalarEdits(s)...)
	// Lift every edit of a sub-spec through its struct field.
	for j := range s.Fields {
		if s.Fields[j].Kind != meta.Struct {
			continue
		}
		for _, se := range edits(s.Fields[j].Sub) {
			out = append(out, liftEdit(s, j, se))
		}
	}
	return out
}

// removeField drops field j.  Dropping a length field drops its arrays too;
// dropping the last array of a length field turns that length field into a
// plain scalar, which then needs a (zero) tree entry.
func removeField(s *Spec, j int) (edit, bool) {
	if len(s.Fields) == 1 {
		return edit{}, false
	}
	drop := map[int]bool{j: true}
	if name := lowerKey(s.Fields[j].Name); s.lengthFieldNames()[name] {
		for i := range s.Fields {
			if lowerKey(s.Fields[i].LengthField) == name {
				drop[i] = true
			}
		}
	}
	if len(drop) >= len(s.Fields) {
		return edit{}, false
	}
	ns := &Spec{Name: s.Name}
	var kept []int
	for i := range s.Fields {
		if !drop[i] {
			ns.Fields = append(ns.Fields, *cloneField(&s.Fields[i]))
			kept = append(kept, i)
		}
	}
	oldPos := treePositions(s)
	newLengths := ns.lengthFieldNames()
	adapt := func(old []any) []any {
		var nt []any
		for k, i := range kept {
			fs := &ns.Fields[k]
			if newLengths[lowerKey(fs.Name)] {
				continue
			}
			if p, ok := oldPos[i]; ok {
				nt = append(nt, old[p])
			} else {
				// Was a length field, now a plain scalar.
				nt = append(nt, zeroScalar(fs))
			}
		}
		if nt == nil {
			nt = []any{}
		}
		return nt
	}
	return edit{spec: ns, adapt: adapt}, true
}

// shrinkEdits proposes array shrinks: every dynamic-length group to zero and
// to half, every static dimension to 1.
func shrinkEdits(s *Spec) []edit {
	var out []edit
	seen := map[string]bool{}
	for j := range s.Fields {
		fs := &s.Fields[j]
		if fs.IsDynamic() {
			key := lowerKey(fs.LengthField)
			if !seen[key] {
				seen[key] = true
				out = append(out, resizeGroup(s, key, func(n int) int { return 0 }))
				out = append(out, resizeGroup(s, key, func(n int) int { return n / 2 }))
				out = append(out, dropHeadGroup(s, key))
			}
		}
		if fs.StaticDim > 1 {
			out = append(out, shrinkStatic(s, j))
		}
	}
	return out
}

// resizeGroup truncates every dynamic array sharing one length field.
func resizeGroup(s *Spec, lengthKey string, newLen func(int) int) edit {
	ns := cloneSpec(s)
	pos := treePositions(s)
	adapt := func(old []any) []any {
		for i := range s.Fields {
			fs := &s.Fields[i]
			if !fs.IsDynamic() || lowerKey(fs.LengthField) != lengthKey {
				continue
			}
			p := pos[i]
			elems := old[p].([]any)
			old[p] = elems[:newLen(len(elems))]
		}
		return old
	}
	return edit{spec: ns, adapt: adapt}
}

// dropHeadGroup discards the first half of every dynamic array sharing one
// length field — resizeGroup only truncates from the tail, which cannot
// isolate a failure carried by a late element.
func dropHeadGroup(s *Spec, lengthKey string) edit {
	ns := cloneSpec(s)
	pos := treePositions(s)
	adapt := func(old []any) []any {
		for i := range s.Fields {
			fs := &s.Fields[i]
			if !fs.IsDynamic() || lowerKey(fs.LengthField) != lengthKey {
				continue
			}
			p := pos[i]
			elems := old[p].([]any)
			old[p] = elems[(len(elems)+1)/2:]
		}
		return old
	}
	return edit{spec: ns, adapt: adapt}
}

// shrinkStatic reduces a static array's dimension to 1.
func shrinkStatic(s *Spec, j int) edit {
	ns := cloneSpec(s)
	ns.Fields[j].StaticDim = 1
	p := treePositions(s)[j]
	adapt := func(old []any) []any {
		old[p] = old[p].([]any)[:1]
		return old
	}
	return edit{spec: ns, adapt: adapt}
}

// descalarEdits proposes turning each array field into a plain scalar of
// the same kind, keeping the first element's value (this is how a failure
// inside a dynamic wrapper shrinks to a bare field).
func descalarEdits(s *Spec) []edit {
	var out []edit
	for j := range s.Fields {
		fs := &s.Fields[j]
		if !fs.IsDynamic() && fs.StaticDim == 0 {
			continue
		}
		ns := cloneSpec(s)
		ns.Fields[j].LengthField = ""
		ns.Fields[j].StaticDim = 0
		oldPos := treePositions(s)
		newLengths := ns.lengthFieldNames()
		j := j
		adapt := func(old []any) []any {
			nt := make([]any, 0, len(old))
			for _, i := range ns.nonLengthFields() {
				nf := &ns.Fields[i]
				if newLengths[lowerKey(nf.Name)] {
					continue
				}
				p, ok := oldPos[i]
				if !ok {
					nt = append(nt, zeroValue(nf)) // length field freed into a plain scalar
					continue
				}
				v := old[p]
				if i == j {
					if elems := v.([]any); len(elems) > 0 {
						v = elems[0]
					} else {
						v = zeroValue(nf)
					}
				}
				nt = append(nt, v)
			}
			return nt
		}
		out = append(out, edit{spec: ns, adapt: adapt})
	}
	return out
}

// liftEdit applies a sub-spec edit through struct field j of s, rewriting
// every value of that struct type (the scalar subtree, or each element of a
// struct array).
func liftEdit(s *Spec, j int, se edit) edit {
	ns := cloneSpec(s)
	ns.Fields[j].Sub = se.spec
	pos, hasPos := treePositions(s)[j]
	isArray := s.Fields[j].IsDynamic() || s.Fields[j].StaticDim > 0
	adapt := func(old []any) []any {
		if !hasPos {
			return old
		}
		if isArray {
			elems := old[pos].([]any)
			for k := range elems {
				elems[k] = se.adapt(elems[k].([]any))
			}
		} else {
			old[pos] = se.adapt(old[pos].([]any))
		}
		return old
	}
	return edit{spec: ns, adapt: adapt}
}

// treePositions maps field index -> value-tree position for non-length
// fields.
func treePositions(s *Spec) map[int]int {
	pos := map[int]int{}
	for p, i := range s.nonLengthFields() {
		pos[i] = p
	}
	return pos
}

// zeroEdits proposes tree-only candidates, each with one top-level scalar
// leaf (or one array element) replaced by its zero value.  Leaves inside
// nested structs are reached indirectly: structural edits usually remove the
// enclosing field first.
func zeroEdits(s *Spec, tree []any) [][]any {
	var out [][]any
	for p, i := range s.nonLengthFields() {
		fs := &s.Fields[i]
		if fs.Kind == meta.Struct {
			continue
		}
		if fs.IsDynamic() || fs.StaticDim > 0 {
			elems := tree[p].([]any)
			for k := range elems {
				if elems[k] == zeroScalar(fs) {
					continue
				}
				cand := cloneTree(tree)
				cand[p].([]any)[k] = zeroScalar(fs)
				out = append(out, cand)
			}
			continue
		}
		if tree[p] == zeroScalar(fs) {
			continue
		}
		cand := cloneTree(tree)
		cand[p] = zeroScalar(fs)
		out = append(out, cand)
	}
	return out
}

// zeroValue is zeroScalar extended to struct fields (a tree of zeros).
func zeroValue(fs *FieldSpec) any {
	if fs.Kind == meta.Struct {
		return zeroSpecTree(fs.Sub)
	}
	return zeroScalar(fs)
}

func zeroSpecTree(s *Spec) []any {
	idx := s.nonLengthFields()
	tree := make([]any, 0, len(idx))
	for _, i := range idx {
		fs := &s.Fields[i]
		if fs.IsDynamic() || fs.StaticDim > 0 {
			tree = append(tree, []any{})
			continue
		}
		tree = append(tree, zeroValue(fs))
	}
	return tree
}

func zeroScalar(fs *FieldSpec) any {
	switch fs.Kind {
	case meta.Integer:
		return int64(0)
	case meta.Unsigned, meta.Enum:
		return uint64(0)
	case meta.Float:
		return uint64(0)
	case meta.Char:
		return byte(0)
	case meta.Boolean:
		return false
	case meta.String:
		return ""
	}
	return nil
}

func cloneSpec(s *Spec) *Spec {
	ns := &Spec{Name: s.Name, Fields: make([]FieldSpec, len(s.Fields))}
	for i := range s.Fields {
		ns.Fields[i] = *cloneField(&s.Fields[i])
	}
	return ns
}

func cloneField(fs *FieldSpec) *FieldSpec {
	nf := *fs
	if fs.Sub != nil {
		nf.Sub = cloneSpec(fs.Sub)
	}
	return &nf
}

func cloneTree(tree []any) []any {
	out := make([]any, len(tree))
	for i, v := range tree {
		if sub, ok := v.([]any); ok {
			out[i] = cloneTree(sub)
		} else {
			out[i] = v
		}
	}
	return out
}

// specSignature is a short stable description used in test names.
func specSignature(s *Spec) string {
	var b strings.Builder
	for i := range s.Fields {
		if i > 0 {
			b.WriteByte(',')
		}
		fs := &s.Fields[i]
		b.WriteString(fs.Kind.String())
		if fs.StaticDim > 0 {
			b.WriteByte('*')
		}
		if fs.IsDynamic() {
			b.WriteByte('+')
		}
	}
	return b.String()
}
