package conform

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/open-metadata/xmit/internal/meta"
)

// The generator is deliberately built on math/rand with an explicit seeded
// Source: the stream for a given seed is stable across Go releases (that
// guarantee is why math/rand/v2 exists), which makes every failure a
// one-liner to replay (`xmitconform -seed N -only i`) and keeps the golden
// wire-vector corpus reproducible from its seed.

// newRand returns the deterministic generator stream for a seed.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// GenConfig bounds the shapes RandomSpec produces.
type GenConfig struct {
	// MaxFields is the maximum number of fields per struct level.
	MaxFields int
	// MaxDepth is the maximum struct nesting depth.
	MaxDepth int
	// MaxDim is the maximum static array dimension and dynamic length.
	MaxDim int
}

// DefaultGen is the configuration the conformance suite and the golden
// corpus use.
var DefaultGen = GenConfig{MaxFields: 7, MaxDepth: 2, MaxDim: 5}

var scalarSizes = []int{1, 2, 4, 8}

// RandomSpec generates a random format spec: a mix of every atomic kind and
// width, strings, static arrays, nested structs (including arrays of
// structs), and dynamic arrays — sometimes two sharing one length field,
// the layout-sharing case the PBIO encoder has a dedicated disagreement
// check for.
func RandomSpec(r *rand.Rand, name string, cfg GenConfig) *Spec {
	return randomSpec(r, name, cfg, 0)
}

func randomSpec(r *rand.Rand, name string, cfg GenConfig, depth int) *Spec {
	s := &Spec{Name: name}
	n := 1 + r.Intn(cfg.MaxFields)
	seq := 0
	nextName := func() string {
		seq++
		return fmt.Sprintf("f%d", seq-1)
	}
	for len(s.Fields) < n {
		switch choice := r.Intn(10); {
		case choice < 4: // plain scalar
			s.Fields = append(s.Fields, randomScalar(r, nextName()))
		case choice < 5: // string
			s.Fields = append(s.Fields, FieldSpec{Name: nextName(), Kind: meta.String, Size: 1})
		case choice < 7: // static array of scalars
			fs := randomScalar(r, nextName())
			fs.StaticDim = 1 + r.Intn(cfg.MaxDim)
			s.Fields = append(s.Fields, fs)
		case choice < 9: // dynamic array group: length field + 1..2 arrays
			lf := FieldSpec{Name: nextName(), Kind: meta.Integer, Size: scalarSizes[r.Intn(4)]}
			if r.Intn(2) == 0 {
				lf.Kind = meta.Unsigned
			}
			s.Fields = append(s.Fields, lf)
			arrays := 1
			if r.Intn(3) == 0 {
				arrays = 2 // shared length field
			}
			for a := 0; a < arrays; a++ {
				el := randomScalar(r, nextName())
				el.LengthField = lf.Name
				if depth < cfg.MaxDepth && r.Intn(4) == 0 {
					el.Kind = meta.Struct
					el.Size = 0
					el.Sub = randomSpec(r, el.Name+"t", cfg, depth+1)
				}
				s.Fields = append(s.Fields, el)
			}
		default: // nested struct, possibly a static array of structs
			if depth >= cfg.MaxDepth {
				s.Fields = append(s.Fields, randomScalar(r, nextName()))
				continue
			}
			fn := nextName()
			fs := FieldSpec{Name: fn, Kind: meta.Struct, Sub: randomSpec(r, fn+"t", cfg, depth+1)}
			if r.Intn(3) == 0 {
				fs.StaticDim = 1 + r.Intn(cfg.MaxDim)
			}
			s.Fields = append(s.Fields, fs)
		}
	}
	return s
}

func randomScalar(r *rand.Rand, name string) FieldSpec {
	fs := FieldSpec{Name: name}
	switch r.Intn(6) {
	case 0:
		fs.Kind, fs.Size = meta.Integer, scalarSizes[r.Intn(4)]
	case 1:
		fs.Kind, fs.Size = meta.Unsigned, scalarSizes[r.Intn(4)]
	case 2:
		fs.Kind, fs.Size = meta.Float, 4+4*r.Intn(2)
	case 3:
		fs.Kind, fs.Size = meta.Char, 1
	case 4:
		fs.Kind, fs.Size = meta.Boolean, scalarSizes[r.Intn(4)]
	default:
		fs.Kind, fs.Size = meta.Enum, scalarSizes[r.Intn(4)]
	}
	return fs
}

// RandomValue generates a canonical value tree for the spec (see value.go
// for the tree's type discipline).  Scalars mix boundary values (min/max,
// ±0, ±Inf, NaN, denormals) with uniform randoms; strings mix empty,
// XML-hostile, multi-byte UTF-8, and CR/LF content.
func RandomValue(r *rand.Rand, s *Spec) []any {
	lengths := s.lengthFieldNames()
	// One element count per length field name, shared by every array that
	// references it (the slices are the authoritative source of the wire
	// value, so they must agree at generation time).
	counts := map[string]int{}
	for i := range s.Fields {
		fs := &s.Fields[i]
		if fs.LengthField != "" {
			key := lowerKey(fs.LengthField)
			if _, ok := counts[key]; !ok {
				counts[key] = r.Intn(DefaultGen.MaxDim + 1) // 0 included: empty arrays
			}
		}
	}
	var tree []any
	for i := range s.Fields {
		fs := &s.Fields[i]
		if lengths[lowerKey(fs.Name)] {
			continue
		}
		switch {
		case fs.IsDynamic():
			n := counts[lowerKey(fs.LengthField)]
			tree = append(tree, randomArray(r, fs, n))
		case fs.StaticDim > 0:
			tree = append(tree, randomArray(r, fs, fs.StaticDim))
		default:
			tree = append(tree, randomElem(r, fs))
		}
	}
	return tree
}

func randomArray(r *rand.Rand, fs *FieldSpec, n int) []any {
	out := make([]any, n)
	for k := range out {
		out[k] = randomElem(r, fs)
	}
	return out
}

func randomElem(r *rand.Rand, fs *FieldSpec) any {
	switch fs.Kind {
	case meta.Integer:
		return randomInt(r, fs.Size)
	case meta.Unsigned, meta.Enum:
		return randomUint(r, fs.Size)
	case meta.Float:
		return randomFloatBits(r, fs.Size)
	case meta.Char:
		return byte(r.Intn(256))
	case meta.Boolean:
		return r.Intn(2) == 0
	case meta.String:
		return randomString(r)
	case meta.Struct:
		return RandomValue(r, fs.Sub)
	}
	return nil
}

func randomInt(r *rand.Rand, size int) int64 {
	bits := uint(8 * size)
	if r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return 0
		case 1:
			return -1
		case 2:
			return -1 << (bits - 1) // min
		default:
			return 1<<(bits-1) - 1 // max
		}
	}
	v := r.Uint64() & (^uint64(0) >> (64 - bits))
	return int64(v<<(64-bits)) >> (64 - bits) // sign-extend to the wire width
}

func randomUint(r *rand.Rand, size int) uint64 {
	bits := uint(8 * size)
	if r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return 0
		case 1:
			return ^uint64(0) >> (64 - bits) // max
		default:
			return 1
		}
	}
	return r.Uint64() & (^uint64(0) >> (64 - bits))
}

// randomFloatBits returns the canonical tree encoding of a float: the bit
// pattern, widened to uint64 (Float32bits for 4-byte fields).  Using bits
// rather than float64 keeps NaN comparable with reflect.DeepEqual and makes
// the "byte-exact after decode" contract literal.
func randomFloatBits(r *rand.Rand, size int) uint64 {
	var f64 float64
	if r.Intn(3) == 0 {
		boundary := []float64{
			0, math.Copysign(0, -1), 1.5, -2.25,
			math.Inf(1), math.Inf(-1), math.NaN(),
			math.MaxFloat64, 5e-324, // float64 max, min denormal
			math.MaxFloat32, 1e-45, // float32 max, min denormal
		}
		f64 = boundary[r.Intn(len(boundary))]
	} else {
		f64 = (r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(60)-30))
	}
	if size == 4 {
		return uint64(math.Float32bits(float32(f64)))
	}
	return math.Float64bits(f64)
}

var stringPool = []string{
	"",
	"a",
	"hello, world",
	`&<>"' markup-hostile`,
	"tab\tand\nnewline",
	"carriage\rreturn",
	"héllo → 世界", // multi-byte UTF-8
}

func randomString(r *rand.Rand) string {
	if r.Intn(2) == 0 {
		return stringPool[r.Intn(len(stringPool))]
	}
	n := r.Intn(24)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(' ' + r.Intn('~'-' '+1)) // printable ASCII
	}
	return string(b)
}
