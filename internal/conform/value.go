package conform

import (
	"fmt"
	"math"
	"reflect"
	"strings"

	"github.com/open-metadata/xmit/internal/meta"
	"github.com/open-metadata/xmit/internal/pbio"
)

// A value tree is the codec-independent canonical form of one message:
// one entry per non-length spec field, in declaration order.
//
//	Integer        int64
//	Unsigned/Enum  uint64
//	Float          uint64  (the bit pattern; Float32bits widened for size 4)
//	Char           byte
//	Boolean        bool
//	String         string
//	Struct         []any   (the sub-spec's tree)
//	arrays         []any of the element form (always non-nil, even empty)
//
// Floats live as bits so that NaN compares equal to itself under
// reflect.DeepEqual and "byte-exact value equality after decode" is the
// literal, not approximate, contract.  Length fields never appear: every
// encoder in the repository treats the slice length as authoritative and
// synthesizes the member, so the tree carries each datum exactly once.

func lowerKey(s string) string { return strings.ToLower(s) }

// nonLengthFields yields the indices of s.Fields that appear in value trees.
func (s *Spec) nonLengthFields() []int {
	lengths := s.lengthFieldNames()
	idx := make([]int, 0, len(s.Fields))
	for i := range s.Fields {
		if !lengths[lowerKey(s.Fields[i].Name)] {
			idx = append(idx, i)
		}
	}
	return idx
}

// BuildStruct materialises a value tree as a pointer to a freshly allocated
// instance of the spec's synthesized Go struct type.
func (s *Spec) BuildStruct(tree []any) (any, error) {
	t, err := s.GoType()
	if err != nil {
		return nil, err
	}
	pv := reflect.New(t)
	if err := s.buildStructInto(tree, pv.Elem()); err != nil {
		return nil, err
	}
	return pv.Interface(), nil
}

func (s *Spec) buildStructInto(tree []any, v reflect.Value) error {
	idx := s.nonLengthFields()
	if len(tree) != len(idx) || len(idx) != v.NumField() {
		return fmt.Errorf("conform: spec %q: tree has %d entries, struct %d fields, spec %d value fields",
			s.Name, len(tree), v.NumField(), len(idx))
	}
	for j, i := range idx {
		fs := &s.Fields[i]
		fv := v.Field(j)
		if fs.IsDynamic() || fs.StaticDim > 0 {
			elems, ok := tree[j].([]any)
			if !ok {
				return fmt.Errorf("conform: field %q: tree entry is %T, want []any", fs.Name, tree[j])
			}
			sl := reflect.MakeSlice(fv.Type(), len(elems), len(elems))
			for k, ev := range elems {
				if err := fs.buildElem(ev, sl.Index(k)); err != nil {
					return err
				}
			}
			fv.Set(sl)
			continue
		}
		if err := fs.buildElem(tree[j], fv); err != nil {
			return err
		}
	}
	return nil
}

func (fs *FieldSpec) buildElem(ev any, fv reflect.Value) error {
	switch fs.Kind {
	case meta.Integer:
		fv.SetInt(ev.(int64))
	case meta.Unsigned, meta.Enum:
		fv.SetUint(ev.(uint64))
	case meta.Float:
		fv.SetFloat(floatFromTreeBits(fs.Size, ev.(uint64)))
	case meta.Char:
		fv.SetUint(uint64(ev.(byte)))
	case meta.Boolean:
		fv.SetBool(ev.(bool))
	case meta.String:
		fv.SetString(ev.(string))
	case meta.Struct:
		return fs.Sub.buildStructInto(ev.([]any), fv)
	default:
		return fmt.Errorf("conform: field %q: unsupported kind %s", fs.Name, fs.Kind)
	}
	return nil
}

// ExtractStruct reads a decoded Go struct (or pointer to one) back into a
// canonical value tree.
func (s *Spec) ExtractStruct(v any) ([]any, error) {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		rv = rv.Elem()
	}
	return s.extractStruct(rv)
}

func (s *Spec) extractStruct(v reflect.Value) ([]any, error) {
	idx := s.nonLengthFields()
	if len(idx) != v.NumField() {
		return nil, fmt.Errorf("conform: spec %q: struct has %d fields, want %d", s.Name, v.NumField(), len(idx))
	}
	tree := make([]any, 0, len(idx))
	for j, i := range idx {
		fs := &s.Fields[i]
		fv := v.Field(j)
		if fs.IsDynamic() || fs.StaticDim > 0 {
			elems := make([]any, 0, fv.Len())
			for k := 0; k < fv.Len(); k++ {
				ev, err := fs.extractElem(fv.Index(k))
				if err != nil {
					return nil, err
				}
				elems = append(elems, ev)
			}
			tree = append(tree, elems)
			continue
		}
		ev, err := fs.extractElem(fv)
		if err != nil {
			return nil, err
		}
		tree = append(tree, ev)
	}
	return tree, nil
}

func (fs *FieldSpec) extractElem(fv reflect.Value) (any, error) {
	switch fs.Kind {
	case meta.Integer:
		return fv.Int(), nil
	case meta.Unsigned, meta.Enum:
		return fv.Uint(), nil
	case meta.Float:
		return floatToTreeBits(fs.Size, fv.Float()), nil
	case meta.Char:
		return byte(fv.Uint()), nil
	case meta.Boolean:
		return fv.Bool(), nil
	case meta.String:
		return fv.String(), nil
	case meta.Struct:
		return fs.Sub.extractStruct(fv)
	}
	return nil, fmt.Errorf("conform: field %q: unsupported kind %s", fs.Name, fs.Kind)
}

// floatFromTreeBits widens a tree bit pattern to the float64 every Go-side
// representation stores (exact for size 4: float32→float64 is lossless).
func floatFromTreeBits(size int, bits uint64) float64 {
	if size == 4 {
		return float64(math.Float32frombits(uint32(bits)))
	}
	return math.Float64frombits(bits)
}

// floatToTreeBits is the inverse: for size-4 fields the float64 is known to
// be an exact float32 image, so the narrowing conversion is lossless too.
func floatToTreeBits(size int, f float64) uint64 {
	if size == 4 {
		return uint64(math.Float32bits(float32(f)))
	}
	return math.Float64bits(f)
}

// BuildRecord materialises a value tree as a dynamic pbio record of the
// given format (which must have been built from this spec, so fields match
// one-to-one).
func (s *Spec) BuildRecord(f *meta.Format, tree []any) (*pbio.Record, error) {
	if len(f.Fields) != len(s.Fields) {
		return nil, fmt.Errorf("conform: spec %q: format has %d fields, want %d", s.Name, len(f.Fields), len(s.Fields))
	}
	rec := pbio.NewRecord(f)
	idx := s.nonLengthFields()
	if len(tree) != len(idx) {
		return nil, fmt.Errorf("conform: spec %q: tree has %d entries, want %d", s.Name, len(tree), len(idx))
	}
	for j, i := range idx {
		fs := &s.Fields[i]
		fl := &f.Fields[i]
		rv, err := fs.recordValue(fl, tree[j])
		if err != nil {
			return nil, err
		}
		if err := rec.Set(fs.Name, rv); err != nil {
			return nil, err
		}
	}
	return rec, nil
}

func (fs *FieldSpec) recordValue(fl *meta.Field, ev any) (any, error) {
	if fs.IsDynamic() || fs.StaticDim > 0 {
		elems := ev.([]any)
		switch fs.Kind {
		case meta.Integer:
			out := make([]int64, len(elems))
			for k := range elems {
				out[k] = elems[k].(int64)
			}
			return out, nil
		case meta.Unsigned, meta.Enum:
			out := make([]uint64, len(elems))
			for k := range elems {
				out[k] = elems[k].(uint64)
			}
			return out, nil
		case meta.Float:
			out := make([]float64, len(elems))
			for k := range elems {
				out[k] = floatFromTreeBits(fs.Size, elems[k].(uint64))
			}
			return out, nil
		case meta.Char:
			out := make([]byte, len(elems))
			for k := range elems {
				out[k] = elems[k].(byte)
			}
			return out, nil
		case meta.Boolean:
			out := make([]bool, len(elems))
			for k := range elems {
				out[k] = elems[k].(bool)
			}
			return out, nil
		case meta.Struct:
			out := make([]*pbio.Record, len(elems))
			for k := range elems {
				sub, err := fs.Sub.BuildRecord(fl.Sub, elems[k].([]any))
				if err != nil {
					return nil, err
				}
				out[k] = sub
			}
			return out, nil
		}
		return nil, fmt.Errorf("conform: field %q: unsupported array kind %s", fs.Name, fs.Kind)
	}
	switch fs.Kind {
	case meta.Float:
		return floatFromTreeBits(fs.Size, ev.(uint64)), nil
	case meta.Struct:
		return fs.Sub.BuildRecord(fl.Sub, ev.([]any))
	default:
		return ev, nil // int64, uint64, byte, bool, string: already canonical
	}
}

// ExtractRecord reads a decoded record back into a canonical value tree.
func (s *Spec) ExtractRecord(rec *pbio.Record) ([]any, error) {
	idx := s.nonLengthFields()
	tree := make([]any, 0, len(idx))
	for _, i := range idx {
		fs := &s.Fields[i]
		rv, ok := rec.Get(fs.Name)
		if !ok {
			return nil, fmt.Errorf("conform: record missing field %q", fs.Name)
		}
		ev, err := fs.fromRecordValue(rv)
		if err != nil {
			return nil, err
		}
		tree = append(tree, ev)
	}
	return tree, nil
}

func (fs *FieldSpec) fromRecordValue(rv any) (any, error) {
	if fs.IsDynamic() || fs.StaticDim > 0 {
		switch sl := rv.(type) {
		case []int64:
			out := make([]any, len(sl))
			for k, x := range sl {
				out[k] = x
			}
			return out, nil
		case []uint64:
			out := make([]any, len(sl))
			for k, x := range sl {
				out[k] = x
			}
			return out, nil
		case []float64:
			out := make([]any, len(sl))
			for k, x := range sl {
				out[k] = floatToTreeBits(fs.Size, x)
			}
			return out, nil
		case []byte:
			out := make([]any, len(sl))
			for k, x := range sl {
				out[k] = x
			}
			return out, nil
		case []bool:
			out := make([]any, len(sl))
			for k, x := range sl {
				out[k] = x
			}
			return out, nil
		case []*pbio.Record:
			out := make([]any, len(sl))
			for k, sub := range sl {
				t, err := fs.Sub.ExtractRecord(sub)
				if err != nil {
					return nil, err
				}
				out[k] = t
			}
			return out, nil
		}
		return nil, fmt.Errorf("conform: field %q: unexpected record array value %T", fs.Name, rv)
	}
	switch fs.Kind {
	case meta.Float:
		f, ok := rv.(float64)
		if !ok {
			return nil, fmt.Errorf("conform: field %q: unexpected record value %T", fs.Name, rv)
		}
		return floatToTreeBits(fs.Size, f), nil
	case meta.Struct:
		sub, ok := rv.(*pbio.Record)
		if !ok {
			return nil, fmt.Errorf("conform: field %q: unexpected record value %T", fs.Name, rv)
		}
		return fs.Sub.ExtractRecord(sub)
	default:
		return rv, nil
	}
}

// EqualTrees reports whether two canonical value trees are identical.
func EqualTrees(a, b []any) bool { return reflect.DeepEqual(a, b) }

// FormatTree renders a tree compactly for failure messages.
func FormatTree(tree []any) string {
	var b strings.Builder
	formatTree(&b, tree)
	return b.String()
}

func formatTree(b *strings.Builder, tree []any) {
	b.WriteByte('{')
	for i, v := range tree {
		if i > 0 {
			b.WriteString(", ")
		}
		switch x := v.(type) {
		case []any:
			formatTree(b, x)
		case string:
			fmt.Fprintf(b, "%q", x)
		case uint64:
			fmt.Fprintf(b, "%#x", x)
		default:
			fmt.Fprintf(b, "%v", x)
		}
	}
	b.WriteByte('}')
}
