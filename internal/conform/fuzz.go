package conform

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"github.com/open-metadata/xmit/internal/discovery"
	"github.com/open-metadata/xmit/internal/registry"
	"github.com/open-metadata/xmit/internal/store"
)

// SeedFuzzCorpora writes generator-derived seed corpora for the repo's
// fuzz targets under root (the repository root): format-metadata XML for
// the dom parser, PBIO wire bodies for the body decoder, broker control
// lines built from generated names, gossiped lineage documents for the
// federation merge path, and case seeds for this package's own
// FuzzRoundTrip.  Seeding the fuzzers with structures the generator
// considers interesting (shared length fields, markup-hostile strings,
// boundary scalars) starts each CI fuzz pass deep inside the input space
// instead of at `[]byte("0")`.
func SeedFuzzCorpora(root string, n int) error {
	h := NewHarness()
	type target struct {
		dir     string
		entries []string
	}
	targets := map[string]*target{
		"dom":       {dir: filepath.Join(root, "internal", "dom", "testdata", "fuzz", "FuzzParse")},
		"pbio":      {dir: filepath.Join(root, "internal", "pbio", "testdata", "fuzz", "FuzzDecodeBody")},
		"echan":     {dir: filepath.Join(root, "internal", "echan", "testdata", "fuzz", "FuzzParseCommand")},
		"conform":   {dir: filepath.Join(root, "internal", "conform", "testdata", "fuzz", "FuzzRoundTrip")},
		"discovery": {dir: filepath.Join(root, "internal", "discovery", "testdata", "fuzz", "FuzzMergeLineages")},
		"journal":   {dir: filepath.Join(root, "internal", "store", "testdata", "fuzz", "FuzzJournal")},
		"snapshot":  {dir: filepath.Join(root, "internal", "store", "testdata", "fuzz", "FuzzSnapshot")},
	}

	for i := 0; i < n; i++ {
		caseSeed := GoldenSeed + int64(i)
		s, tree := GenCase(caseSeed)
		cs, err := s.Compile(h.Plats)
		if err != nil {
			return fmt.Errorf("conform: fuzz seed %d: %w", caseSeed, err)
		}
		targets["dom"].entries = append(targets["dom"].entries, bytesEntry([]byte(s.XML())))
		for _, p := range h.Plats {
			body, err := h.Drv[0].Encode(cs, cs.Format(p.Name), tree)
			if err != nil {
				return fmt.Errorf("conform: fuzz seed %d on %s: %w", caseSeed, p.Name, err)
			}
			targets["pbio"].entries = append(targets["pbio"].entries, bytesEntry(body))
		}
		targets["echan"].entries = append(targets["echan"].entries,
			stringEntry("CREATE "+s.Name),
			stringEntry("SUB "+s.Name+" drop_oldest 8"),
		)
		if idx := s.nonLengthFields(); len(idx) > 0 {
			targets["echan"].entries = append(targets["echan"].entries,
				stringEntry("DERIVE d_"+s.Name+" "+s.Name+" "+s.Fields[idx[0]].Name+" >= 1"))
		}
		targets["conform"].entries = append(targets["conform"].entries,
			"go test fuzz v1\nint64("+strconv.FormatInt(caseSeed, 10)+")\n")

		// A generated evolution chain registered under its policy, snapshot
		// as the full-body lineage document brokers gossip — real structure
		// for the merge fuzzer to mutate (multi-version histories, canonical
		// format bodies, every policy name).
		chr := newRand(caseSeed)
		chPolicy := evolvePolicies[int(abs64(caseSeed))%len(evolvePolicies)]
		chain := RandomEvolveChain(chr, s.Name, DefaultGen, 2, chPolicy)
		lreg := registry.New(registry.WithDefaultPolicy(chPolicy))
		for v, sp := range chain.Specs {
			cs, err := sp.Compile(h.Plats[:1])
			if err != nil {
				return fmt.Errorf("conform: fuzz lineage seed %d v%d: %w", caseSeed, v+1, err)
			}
			if _, err := lreg.Register(sp.Name, cs.Format(h.Plats[0].Name), "seed"); err != nil {
				return fmt.Errorf("conform: fuzz lineage seed %d v%d: %w", caseSeed, v+1, err)
			}
		}
		targets["discovery"].entries = append(targets["discovery"].entries,
			bytesEntry(discovery.MarshalLineages(discovery.SnapshotLineagesFull(lreg))),
			bytesEntry(discovery.MarshalLineages(discovery.SnapshotLineages(lreg))))

		// The store's on-disk formats, built from the same generated
		// lineage: a journal of real append+policy frames (plus a copy with
		// a torn tail, the exact shape crash recovery must truncate) and
		// the checksummed snapshot envelope around the lineage document.
		jb, err := store.AppendJournalRecord(nil, store.JournalRecord{
			Kind: store.RecordPolicy, Lineage: s.Name, Policy: chPolicy.String(),
		})
		if err != nil {
			return fmt.Errorf("conform: fuzz journal seed %d: %w", caseSeed, err)
		}
		jb, err = store.AppendJournalRecord(jb, store.JournalRecord{
			Kind: store.RecordAppend, Lineage: s.Name,
			ID: cs.Format(h.Plats[0].Name).ID(), Source: "seed",
			Adopted: caseSeed%2 == 0, RegisteredAt: time.Unix(0, caseSeed),
		})
		if err != nil {
			return fmt.Errorf("conform: fuzz journal seed %d: %w", caseSeed, err)
		}
		targets["journal"].entries = append(targets["journal"].entries,
			bytesEntry(jb),
			bytesEntry(jb[:len(jb)-3]))
		targets["snapshot"].entries = append(targets["snapshot"].entries,
			bytesEntry(store.EncodeSnapshot(discovery.MarshalLineages(discovery.SnapshotLineagesFull(lreg)))))
	}
	// The three historical disagreement seeds stay in the round-trip corpus
	// forever (xdr enum(8), mpidt boolean(2), xmlwire carriage return).
	for _, seed := range []int64{8, 15, 41} {
		targets["conform"].entries = append(targets["conform"].entries,
			"go test fuzz v1\nint64("+strconv.FormatInt(seed, 10)+")\n")
	}

	for _, tg := range targets {
		if err := os.MkdirAll(tg.dir, 0o755); err != nil {
			return err
		}
		for i, entry := range tg.entries {
			name := filepath.Join(tg.dir, fmt.Sprintf("conform_seed_%03d", i))
			if err := os.WriteFile(name, []byte(entry), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// bytesEntry renders one []byte-typed Go fuzz corpus file.
func bytesEntry(b []byte) string {
	return "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
}

// stringEntry renders one string-typed Go fuzz corpus file.
func stringEntry(s string) string {
	return "go test fuzz v1\nstring(" + strconv.Quote(s) + ")\n"
}
