package conform

import (
	"bytes"
	"fmt"
	"strings"

	"github.com/open-metadata/xmit/internal/meta"
	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/platform"
)

// Harness wires the codec drivers, the platform set, and a shared pbio
// context into one differential engine.
type Harness struct {
	Ctx   *pbio.Context
	Plats []*platform.Platform
	Drv   []Driver
}

// NewHarness builds the standard harness: all four simulated platforms,
// every codec driver, one shared (concurrency-safe) pbio context.
func NewHarness() *Harness {
	ctx := pbio.NewContext()
	return &Harness{Ctx: ctx, Plats: Platforms(), Drv: Drivers(ctx)}
}

// Disagreement is one codec result that differs from the reference.
type Disagreement struct {
	Spec     *Spec
	Codec    string
	Sender   string // sender platform
	Receiver string // receiver platform
	Stage    string // decode | relay-decode | encode | relay-encode | wire-identity
	Detail   string
}

func (d Disagreement) String() string {
	return fmt.Sprintf("%s [%s -> %s] %s: %s", d.Codec, d.Sender, d.Receiver, d.Stage, d.Detail)
}

// RunStats aggregates one differential run.
type RunStats struct {
	Specs         int
	Pairs         int            // platform pairs per spec
	Checks        int            // encode+decode legs executed
	Eligible      map[string]int // codec name -> specs it ran on
	Disagreements []Disagreement
}

func (st *RunStats) add(other []Disagreement) { st.Disagreements = append(st.Disagreements, other...) }

// CheckSpec round-trips one (spec, value) through every codec and every
// sender/receiver platform pair:
//
//	tree --encode(S)--> wire --decode(S on R)--> tree'   (must equal tree)
//	tree' --encode(R)--> wire' --decode(R on S)--> tree'' (must equal tree)
//
// The second ("relay") leg is what makes the receiver platform meaningful
// for codecs that decode straight into Go values: the decoded value is
// re-encoded under the receiver's native layout and read back.  The two
// pbio paths (struct and record) must additionally agree byte-for-byte on
// the wire, covering the zero-alloc encoder against the reference encoder.
func (h *Harness) CheckSpec(cs *CompiledSpec, tree []any, st *RunStats) []Disagreement {
	var out []Disagreement
	report := func(codec, sender, recv, stage, detail string) {
		out = append(out, Disagreement{
			Spec: cs.Spec, Codec: codec, Sender: sender, Receiver: recv, Stage: stage, Detail: detail,
		})
	}
	for _, pS := range h.Plats {
		fS := cs.Format(pS.Name)
		// Wire identity between the two pbio encoders is per-sender.
		refWire, err := h.Drv[0].Encode(cs, fS, tree)
		if err != nil {
			report(h.Drv[0].Name(), pS.Name, "-", "encode", err.Error())
			continue
		}
		recWire, err := h.Drv[1].Encode(cs, fS, tree)
		if err != nil {
			report(h.Drv[1].Name(), pS.Name, "-", "encode", err.Error())
		} else if !bytes.Equal(refWire, recWire) {
			report(h.Drv[1].Name(), pS.Name, "-", "wire-identity",
				fmt.Sprintf("record-path wire differs from struct-path wire at byte %d", firstDiff(refWire, recWire)))
		}
		for _, pR := range h.Plats {
			fR := cs.Format(pR.Name)
			for _, drv := range h.Drv {
				if !drv.Eligible(cs.Spec) {
					continue
				}
				out = append(out, h.roundTrip(cs, drv, fS, fR, pS.Name, pR.Name, tree, st)...)
			}
		}
	}
	return out
}

func (h *Harness) roundTrip(cs *CompiledSpec, drv Driver, fS, fR *meta.Format, sName, rName string,
	tree []any, st *RunStats) []Disagreement {
	var out []Disagreement
	report := func(stage, detail string) {
		out = append(out, Disagreement{
			Spec: cs.Spec, Codec: drv.Name(), Sender: sName, Receiver: rName, Stage: stage, Detail: detail,
		})
	}
	leg := func() {
		if st != nil {
			st.Checks++
		}
	}
	leg()
	wire, err := drv.Encode(cs, fS, tree)
	if err != nil {
		report("encode", err.Error())
		return out
	}
	leg()
	got, err := drv.Decode(cs, fS, fR, wire)
	if err != nil {
		report("decode", err.Error())
		return out
	}
	if !EqualTrees(tree, got) {
		report("decode", diffDetail(tree, got))
		return out
	}
	// Relay: re-encode the decoded value under the receiver's layout and
	// read it back on the original sender.
	leg()
	wire2, err := drv.Encode(cs, fR, got)
	if err != nil {
		report("relay-encode", err.Error())
		return out
	}
	leg()
	got2, err := drv.Decode(cs, fR, fS, wire2)
	if err != nil {
		report("relay-decode", err.Error())
		return out
	}
	if !EqualTrees(tree, got2) {
		report("relay-decode", diffDetail(tree, got2))
	}
	return out
}

func diffDetail(want, got []any) string {
	w, g := FormatTree(want), FormatTree(got)
	if len(w) > 160 {
		w = w[:160] + "..."
	}
	if len(g) > 160 {
		g = g[:160] + "..."
	}
	return fmt.Sprintf("decoded value differs\n    want %s\n    got  %s", w, g)
}

func firstDiff(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// Run generates n random (spec, value) cases from the seed and checks each.
// Case i uses its own generator seeded seed+i, so any failure replays in
// isolation with Run(seed+i, 1) — the one-liner xmitconform prints.
func (h *Harness) Run(seed int64, n int) (*RunStats, error) {
	st := &RunStats{Pairs: len(h.Plats) * len(h.Plats), Eligible: map[string]int{}}
	for i := 0; i < n; i++ {
		caseSeed := seed + int64(i)
		s, tree := GenCase(caseSeed)
		cs, err := s.Compile(h.Plats)
		if err != nil {
			return st, fmt.Errorf("case seed %d: %w", caseSeed, err)
		}
		st.Specs++
		for _, drv := range h.Drv {
			if drv.Eligible(s) {
				st.Eligible[drv.Name()]++
			}
		}
		if ds := h.CheckSpec(cs, tree, st); len(ds) > 0 {
			ms, mtree := h.Minimize(s, tree)
			mds := h.mustCheck(ms, mtree)
			detail := ds[0]
			if len(mds) > 0 {
				detail = mds[0]
			}
			st.add([]Disagreement{detail})
			return st, fmt.Errorf(
				"conform: codec disagreement (replay: xmitconform -seed %d -n 1)\n  %s\n  minimized format:\n%s",
				caseSeed, detail, indent(ms.XML(), "    "))
		}
	}
	return st, nil
}

// mustCheck re-runs a candidate during minimization, compiling on the fly;
// compile errors mean the candidate is invalid and count as "no failure".
func (h *Harness) mustCheck(s *Spec, tree []any) []Disagreement {
	cs, err := s.Compile(h.Plats)
	if err != nil {
		return nil
	}
	return h.CheckSpec(cs, tree, nil)
}

// GenCase deterministically generates the (spec, value) pair for one case
// seed.  Shared by Run, the golden corpus, and the fuzz seed writer.
func GenCase(caseSeed int64) (*Spec, []any) {
	r := newRand(caseSeed)
	s := RandomSpec(r, fmt.Sprintf("m%d", abs64(caseSeed)), DefaultGen)
	tree := RandomValue(r, s)
	return s, tree
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}
