package conform

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/open-metadata/xmit/internal/meta"
)

// The golden corpus pins the exact wire bytes of every codec on every
// platform for a fixed set of generated cases.  Any byte of drift — a
// changed layout rule, a broken zero-alloc encode path, an "optimization"
// that reorders the variable section — fails the CI gate until the vectors
// are regenerated deliberately with `xmitconform -update`.

// GoldenSeed is the fixed base seed of the corpus cases.
const GoldenSeed = 101

// GoldenCount is the number of corpus cases per codec × platform file.
const GoldenCount = 24

// GoldenCase is one corpus entry.
type GoldenCase struct {
	Seed int64
	Spec *Spec
	Tree []any
}

// GoldenCases generates the deterministic corpus.
func GoldenCases(n int) []GoldenCase {
	out := make([]GoldenCase, n)
	for i := range out {
		seed := int64(GoldenSeed) + int64(i)
		s, tree := GenCase(seed)
		out[i] = GoldenCase{Seed: seed, Spec: s, Tree: tree}
	}
	return out
}

func goldenFile(dir, codec, plat string) string {
	return filepath.Join(dir, fmt.Sprintf("%s_%s.hex", codec, plat))
}

// WriteGolden (re)generates the full corpus under dir: one file per
// codec × platform, one hex line per case ("-" where the codec is not
// eligible for the case's spec).
func (h *Harness) WriteGolden(dir string, n int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cases := GoldenCases(n)
	compiled, err := h.compileCases(cases)
	if err != nil {
		return err
	}
	for _, drv := range h.Drv {
		for _, p := range h.Plats {
			var b strings.Builder
			fmt.Fprintf(&b, "# xmit conformance golden vectors codec=%s platform=%s seed=%d n=%d\n",
				drv.Name(), p.Name, GoldenSeed, n)
			for i, gc := range cases {
				line, err := h.goldenLine(drv, compiled[i], p.Name, gc)
				if err != nil {
					return err
				}
				b.WriteString(line)
				b.WriteByte('\n')
			}
			if err := os.WriteFile(goldenFile(dir, drv.Name(), p.Name), []byte(b.String()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

func (h *Harness) compileCases(cases []GoldenCase) ([]*CompiledSpec, error) {
	out := make([]*CompiledSpec, len(cases))
	for i, gc := range cases {
		cs, err := gc.Spec.Compile(h.Plats)
		if err != nil {
			return nil, fmt.Errorf("golden case seed %d: %w", gc.Seed, err)
		}
		out[i] = cs
	}
	return out, nil
}

func (h *Harness) goldenLine(drv Driver, cs *CompiledSpec, plat string, gc GoldenCase) (string, error) {
	if !drv.Eligible(gc.Spec) {
		return "-", nil
	}
	f := cs.Format(plat)
	wire, err := drv.Encode(cs, f, gc.Tree)
	if err != nil {
		return "", fmt.Errorf("golden case seed %d codec %s platform %s: %w", gc.Seed, drv.Name(), plat, err)
	}
	if drv.Name() == ReferenceDriver {
		// The corpus also stands guard over the zero-alloc encode paths:
		// all three full-message entry points must emit identical bytes.
		if err := h.pbioPathsAgree(cs, f, gc.Tree, wire); err != nil {
			return "", fmt.Errorf("golden case seed %d platform %s: %w", gc.Seed, plat, err)
		}
	}
	return hex.EncodeToString(wire), nil
}

// pbioPathsAgree asserts Encode, AppendEncode, and EncodeTo produce the same
// message, and that its body matches the EncodeBody wire used for the
// corpus.
func (h *Harness) pbioPathsAgree(cs *CompiledSpec, f *meta.Format, tree []any, body []byte) error {
	v, err := cs.Spec.BuildStruct(tree)
	if err != nil {
		return err
	}
	if _, err := h.Ctx.RegisterFormat(f); err != nil {
		return err
	}
	b, err := h.Ctx.Bind(f, v)
	if err != nil {
		return err
	}
	msg, err := b.Encode(v)
	if err != nil {
		return err
	}
	app, err := b.AppendEncode(nil, v)
	if err != nil {
		return err
	}
	to, err := b.EncodeTo(make([]byte, 0, len(msg)+64), v)
	if err != nil {
		return err
	}
	if !bytes.Equal(msg, app) {
		return fmt.Errorf("pbio: AppendEncode differs from Encode at byte %d", firstDiff(msg, app))
	}
	if !bytes.Equal(msg, to) {
		return fmt.Errorf("pbio: EncodeTo differs from Encode at byte %d", firstDiff(msg, to))
	}
	if !bytes.Equal(msg[len(msg)-len(body):], body) {
		return fmt.Errorf("pbio: Encode body differs from EncodeBody at byte %d",
			firstDiff(msg[len(msg)-len(body):], body))
	}
	return nil
}

// CheckGolden regenerates every vector and compares it byte-for-byte with
// the corpus on disk.  It returns a description per mismatch (empty means
// the wire formats are unchanged).
func (h *Harness) CheckGolden(dir string, n int) ([]string, error) {
	cases := GoldenCases(n)
	compiled, err := h.compileCases(cases)
	if err != nil {
		return nil, err
	}
	var mismatches []string
	for _, drv := range h.Drv {
		for _, p := range h.Plats {
			path := goldenFile(dir, drv.Name(), p.Name)
			data, err := os.ReadFile(path)
			if err != nil {
				mismatches = append(mismatches, fmt.Sprintf("%s: %v (run xmitconform -update)", path, err))
				continue
			}
			lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
			if len(lines) < 1 || !strings.HasPrefix(lines[0], "#") {
				mismatches = append(mismatches, fmt.Sprintf("%s: missing header line", path))
				continue
			}
			lines = lines[1:]
			if len(lines) < n {
				mismatches = append(mismatches,
					fmt.Sprintf("%s: %d vectors on disk, want %d (run xmitconform -update)", path, len(lines), n))
				continue
			}
			for i, gc := range cases {
				want, err := h.goldenLine(drv, compiled[i], p.Name, gc)
				if err != nil {
					return nil, err
				}
				if got := strings.TrimSpace(lines[i]); got != want {
					mismatches = append(mismatches, describeGoldenDiff(path, i, gc.Seed, got, want))
				}
			}
		}
	}
	return mismatches, nil
}

func describeGoldenDiff(path string, idx int, seed int64, got, want string) string {
	if got == "-" || want == "-" {
		return fmt.Sprintf("%s: vector %d (seed %d): eligibility changed (disk %q, regenerated %q)",
			path, idx, seed, truncate(got, 40), truncate(want, 40))
	}
	gb, errG := hex.DecodeString(got)
	wb, errW := hex.DecodeString(want)
	if errG != nil || errW != nil {
		return fmt.Sprintf("%s: vector %d (seed %d): undecodable hex", path, idx, seed)
	}
	return fmt.Sprintf("%s: vector %d (seed %d): wire drift at byte %d (disk %d bytes, regenerated %d bytes)",
		path, idx, seed, firstDiff(gb, wb), len(gb), len(wb))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
