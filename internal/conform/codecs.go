package conform

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sync"

	"github.com/open-metadata/xmit/internal/cdr"
	"github.com/open-metadata/xmit/internal/meta"
	"github.com/open-metadata/xmit/internal/mpidt"
	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/platform"
	"github.com/open-metadata/xmit/internal/xdr"
	"github.com/open-metadata/xmit/internal/xmlwire"
)

// Platforms are the simulated ABIs every conformance run crosses: both byte
// orders, both pointer widths, and the i386 4-byte double-alignment quirk.
func Platforms() []*platform.Platform {
	return []*platform.Platform{platform.Sparc32, platform.Sparc64, platform.X86, platform.X8664}
}

// CompiledSpec caches everything derived from one Spec: the synthesized Go
// type and the concrete format per platform.
type CompiledSpec struct {
	Spec    *Spec
	GoType  reflect.Type
	formats map[string]*meta.Format
}

// Compile lays the spec out on every platform and synthesizes its Go type.
func (s *Spec) Compile(plats []*platform.Platform) (*CompiledSpec, error) {
	t, err := s.GoType()
	if err != nil {
		return nil, err
	}
	cs := &CompiledSpec{Spec: s, GoType: t, formats: make(map[string]*meta.Format, len(plats))}
	for _, p := range plats {
		f, err := s.Build(p)
		if err != nil {
			return nil, fmt.Errorf("conform: spec %q on %s: %w", s.Name, p.Name, err)
		}
		cs.formats[p.Name] = f
	}
	return cs, nil
}

// Format returns the spec's layout on the named platform.
func (cs *CompiledSpec) Format(platformName string) *meta.Format { return cs.formats[platformName] }

// newValue returns a pointer to a zero value of the spec's Go type.
func (cs *CompiledSpec) newValue() any { return reflect.New(cs.GoType).Interface() }

// Driver is one marshaling backend under differential test.  Encode
// produces the wire bytes a sender on fSend's platform would emit; Decode
// consumes them on a receiver whose native layout is fRecv (only codecs
// that rebuild a local memory image — mpidt — use fRecv; the others decode
// straight into Go values).
type Driver interface {
	Name() string
	// Eligible reports whether the codec supports this spec at all
	// (mpidt has no mapping for strings or dynamic arrays).
	Eligible(s *Spec) bool
	Encode(cs *CompiledSpec, fSend *meta.Format, tree []any) ([]byte, error)
	Decode(cs *CompiledSpec, fSend, fRecv *meta.Format, wire []byte) ([]any, error)
}

// Drivers returns every backend, pbio (the reference) first.
func Drivers(ctx *pbio.Context) []Driver {
	return []Driver{
		&pbioStructDriver{ctx: ctx},
		&pbioRecordDriver{ctx: ctx},
		&xdrDriver{},
		&cdrDriver{},
		&xmlDriver{},
		&mpiDriver{ctx: ctx},
	}
}

// ReferenceDriver is the driver whose result defines correctness: PBIO's
// compiled struct path.
const ReferenceDriver = "pbio"

type pbioStructDriver struct{ ctx *pbio.Context }

func (d *pbioStructDriver) Name() string          { return ReferenceDriver }
func (d *pbioStructDriver) Eligible(s *Spec) bool { return true }

func (d *pbioStructDriver) Encode(cs *CompiledSpec, fSend *meta.Format, tree []any) ([]byte, error) {
	v, err := cs.Spec.BuildStruct(tree)
	if err != nil {
		return nil, err
	}
	b, err := d.ctx.Bind(fSend, v)
	if err != nil {
		return nil, err
	}
	return b.EncodeBody(nil, v)
}

func (d *pbioStructDriver) Decode(cs *CompiledSpec, fSend, fRecv *meta.Format, wire []byte) ([]any, error) {
	out := cs.newValue()
	if err := d.ctx.DecodeBody(fSend, wire, out); err != nil {
		return nil, err
	}
	return cs.Spec.ExtractStruct(out)
}

type pbioRecordDriver struct{ ctx *pbio.Context }

func (d *pbioRecordDriver) Name() string          { return "pbio-record" }
func (d *pbioRecordDriver) Eligible(s *Spec) bool { return true }

func (d *pbioRecordDriver) Encode(cs *CompiledSpec, fSend *meta.Format, tree []any) ([]byte, error) {
	rec, err := cs.Spec.BuildRecord(fSend, tree)
	if err != nil {
		return nil, err
	}
	return d.ctx.EncodeRecordBody(nil, rec)
}

func (d *pbioRecordDriver) Decode(cs *CompiledSpec, fSend, fRecv *meta.Format, wire []byte) ([]any, error) {
	rec, err := d.ctx.DecodeRecordBody(fSend, wire)
	if err != nil {
		return nil, err
	}
	return cs.Spec.ExtractRecord(rec)
}

// refbindCodec is the common shape of the xdr/cdr/xmlwire codecs.
type refbindCodec interface {
	Encode(dst []byte, v any) ([]byte, error)
	Decode(data []byte, out any) error
}

// codecCache memoises compiled refbind codecs per format (formats are
// interned per CompiledSpec, so pointer identity is the right key).
type codecCache struct {
	mu sync.Mutex
	m  map[*meta.Format]refbindCodec
}

func (cc *codecCache) get(f *meta.Format, build func() (refbindCodec, error)) (refbindCodec, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.m == nil {
		cc.m = make(map[*meta.Format]refbindCodec)
	}
	if c, ok := cc.m[f]; ok {
		return c, nil
	}
	c, err := build()
	if err != nil {
		return nil, err
	}
	cc.m[f] = c
	return c, nil
}

func refbindEncode(cc *codecCache, cs *CompiledSpec, f *meta.Format, tree []any,
	build func() (refbindCodec, error)) ([]byte, error) {
	c, err := cc.get(f, build)
	if err != nil {
		return nil, err
	}
	v, err := cs.Spec.BuildStruct(tree)
	if err != nil {
		return nil, err
	}
	return c.Encode(nil, v)
}

func refbindDecode(cc *codecCache, cs *CompiledSpec, f *meta.Format, wire []byte,
	build func() (refbindCodec, error)) ([]any, error) {
	c, err := cc.get(f, build)
	if err != nil {
		return nil, err
	}
	out := cs.newValue()
	if err := c.Decode(wire, out); err != nil {
		return nil, err
	}
	return cs.Spec.ExtractStruct(out)
}

type xdrDriver struct{ cache codecCache }

func (d *xdrDriver) Name() string          { return "xdr" }
func (d *xdrDriver) Eligible(s *Spec) bool { return true }

func (d *xdrDriver) Encode(cs *CompiledSpec, fSend *meta.Format, tree []any) ([]byte, error) {
	return refbindEncode(&d.cache, cs, fSend, tree, func() (refbindCodec, error) {
		return xdr.NewCodec(fSend, cs.newValue())
	})
}

func (d *xdrDriver) Decode(cs *CompiledSpec, fSend, fRecv *meta.Format, wire []byte) ([]any, error) {
	return refbindDecode(&d.cache, cs, fSend, wire, func() (refbindCodec, error) {
		return xdr.NewCodec(fSend, cs.newValue())
	})
}

type cdrDriver struct{ cache codecCache }

func (d *cdrDriver) Name() string          { return "cdr" }
func (d *cdrDriver) Eligible(s *Spec) bool { return true }

func (d *cdrDriver) Encode(cs *CompiledSpec, fSend *meta.Format, tree []any) ([]byte, error) {
	return refbindEncode(&d.cache, cs, fSend, tree, func() (refbindCodec, error) {
		return cdr.NewCodec(fSend, cs.newValue())
	})
}

func (d *cdrDriver) Decode(cs *CompiledSpec, fSend, fRecv *meta.Format, wire []byte) ([]any, error) {
	return refbindDecode(&d.cache, cs, fSend, wire, func() (refbindCodec, error) {
		return cdr.NewCodec(fSend, cs.newValue())
	})
}

type xmlDriver struct{ cache codecCache }

func (d *xmlDriver) Name() string          { return "xmlwire" }
func (d *xmlDriver) Eligible(s *Spec) bool { return true }

func (d *xmlDriver) Encode(cs *CompiledSpec, fSend *meta.Format, tree []any) ([]byte, error) {
	return refbindEncode(&d.cache, cs, fSend, tree, func() (refbindCodec, error) {
		return xmlwire.NewCodec(fSend, cs.newValue())
	})
}

func (d *xmlDriver) Decode(cs *CompiledSpec, fSend, fRecv *meta.Format, wire []byte) ([]any, error) {
	return refbindDecode(&d.cache, cs, fSend, wire, func() (refbindCodec, error) {
		return xmlwire.NewCodec(fSend, cs.newValue())
	})
}

// mpiDriver drives MPI derived datatypes: the sender's native memory image
// (identical bytes to PBIO's fixed block) is packed one basic element at a
// time into the canonical big-endian external format, then unpacked into
// the *receiver's* native image and read back through the record decoder —
// the only driver whose decode genuinely depends on the receiver ABI.
type mpiDriver struct{ ctx *pbio.Context }

func (d *mpiDriver) Name() string { return "mpidt" }

// Eligible: MPI struct datatypes describe fixed layouts only.
func (d *mpiDriver) Eligible(s *Spec) bool { return specFixed(s) }

func specFixed(s *Spec) bool {
	for i := range s.Fields {
		fs := &s.Fields[i]
		if fs.Kind == meta.String || fs.IsDynamic() {
			return false
		}
		if fs.Kind == meta.Struct && !specFixed(fs.Sub) {
			return false
		}
	}
	return true
}

func byteOrder(f *meta.Format) binary.ByteOrder {
	if f.BigEndian {
		return binary.BigEndian
	}
	return binary.LittleEndian
}

func (d *mpiDriver) Encode(cs *CompiledSpec, fSend *meta.Format, tree []any) ([]byte, error) {
	v, err := cs.Spec.BuildStruct(tree)
	if err != nil {
		return nil, err
	}
	b, err := d.ctx.Bind(fSend, v)
	if err != nil {
		return nil, err
	}
	image, err := b.EncodeBody(nil, v) // fixed layouts: body == memory image
	if err != nil {
		return nil, err
	}
	dt, err := mpidt.FromFormat(fSend)
	if err != nil {
		return nil, err
	}
	return mpidt.Pack(image, byteOrder(fSend), 1, dt, nil)
}

func (d *mpiDriver) Decode(cs *CompiledSpec, fSend, fRecv *meta.Format, wire []byte) ([]any, error) {
	dt, err := mpidt.FromFormat(fRecv)
	if err != nil {
		return nil, err
	}
	image := make([]byte, fRecv.Size)
	if err := mpidt.Unpack(wire, image, byteOrder(fRecv), 1, dt); err != nil {
		return nil, err
	}
	rec, err := d.ctx.DecodeRecordBody(fRecv, image)
	if err != nil {
		return nil, err
	}
	return cs.Spec.ExtractRecord(rec)
}
