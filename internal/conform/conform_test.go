package conform

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// differentialN is the acceptance-criteria case count; -short (used by the
// CI conform job to stay under its time budget) runs a subset.
func differentialN(t *testing.T) int {
	if testing.Short() {
		return 64
	}
	return 500
}

// TestDifferential is the tentpole assertion: hundreds of random formats,
// every codec, all 16 sender/receiver platform pairs, zero disagreements.
func TestDifferential(t *testing.T) {
	h := NewHarness()
	n := differentialN(t)
	st, err := h.Run(1, n)
	if err != nil {
		t.Fatal(err)
	}
	if st.Specs != n {
		t.Fatalf("ran %d specs, want %d", st.Specs, n)
	}
	if st.Pairs != 16 {
		t.Fatalf("platform pairs = %d, want 16", st.Pairs)
	}
	if st.Eligible[ReferenceDriver] != n {
		t.Fatalf("reference driver eligible for %d/%d specs", st.Eligible[ReferenceDriver], n)
	}
	if st.Eligible["mpidt"] == 0 {
		t.Fatal("no generated spec was mpidt-eligible; generator shape distribution is broken")
	}
	t.Logf("%d specs, %d legs, eligibility: %v", st.Specs, st.Checks, st.Eligible)
}

// TestTreeRepresentations checks the harness's own plumbing: a value tree
// survives materialisation as a Go struct and as a dynamic record.
func TestTreeRepresentations(t *testing.T) {
	for seed := int64(2000); seed < 2100; seed++ {
		s, tree := GenCase(seed)
		v, err := s.BuildStruct(tree)
		if err != nil {
			t.Fatalf("seed %d: BuildStruct: %v", seed, err)
		}
		got, err := s.ExtractStruct(v)
		if err != nil {
			t.Fatalf("seed %d: ExtractStruct: %v", seed, err)
		}
		if !EqualTrees(tree, got) {
			t.Fatalf("seed %d: struct round-trip\nwant %s\ngot  %s", seed, FormatTree(tree), FormatTree(got))
		}
		for _, p := range Platforms() {
			f, err := s.Build(p)
			if err != nil {
				t.Fatalf("seed %d: build on %s: %v", seed, p.Name, err)
			}
			rec, err := s.BuildRecord(f, tree)
			if err != nil {
				t.Fatalf("seed %d: BuildRecord: %v", seed, err)
			}
			got, err := s.ExtractRecord(rec)
			if err != nil {
				t.Fatalf("seed %d: ExtractRecord: %v", seed, err)
			}
			if !EqualTrees(tree, got) {
				t.Fatalf("seed %d: record round-trip on %s\nwant %s\ngot  %s",
					seed, p.Name, FormatTree(tree), FormatTree(got))
			}
		}
	}
}

// TestMinimizeEditsStayConsistent: every structural edit of a random spec
// must yield a spec that still compiles and a tree that still materialises.
func TestMinimizeEditsStayConsistent(t *testing.T) {
	for seed := int64(3000); seed < 3050; seed++ {
		s, tree := GenCase(seed)
		for i, e := range edits(s) {
			cand := e.adapt(cloneTree(tree))
			if _, err := e.spec.Compile(Platforms()); err != nil {
				t.Fatalf("seed %d edit %d: candidate spec does not compile: %v\n%s", seed, i, err, e.spec.XML())
			}
			if _, err := e.spec.BuildStruct(cand); err != nil {
				t.Fatalf("seed %d edit %d: candidate tree does not materialise: %v\n%s", seed, i, err, e.spec.XML())
			}
		}
		for i, cand := range zeroEdits(s, tree) {
			if _, err := s.BuildStruct(cand); err != nil {
				t.Fatalf("seed %d zero-edit %d: %v", seed, i, err)
			}
		}
	}
}

// TestGoldenVectors gates the committed corpus: regenerating every vector
// must reproduce the files under testdata/golden byte-for-byte.
func TestGoldenVectors(t *testing.T) {
	h := NewHarness()
	mismatches, err := h.CheckGolden(filepath.Join("testdata", "golden"), GoldenCount)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range mismatches {
		t.Error(m)
	}
}

// TestGoldenDetectsPerturbation proves the gate actually fires: flip one
// byte of one committed vector in a scratch copy and the check must report
// drift in exactly that file.
func TestGoldenDetectsPerturbation(t *testing.T) {
	h := NewHarness()
	dir := t.TempDir()
	if err := h.WriteGolden(dir, GoldenCount); err != nil {
		t.Fatal(err)
	}
	if ms, err := h.CheckGolden(dir, GoldenCount); err != nil || len(ms) != 0 {
		t.Fatalf("fresh corpus should verify cleanly, got %v, %v", ms, err)
	}
	path := goldenFile(dir, ReferenceDriver, "sparc32")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the first hex digit of the first vector line.
	i := strings.IndexByte(string(data), '\n') + 1
	for data[i] == '-' || data[i] == '\n' {
		i++
	}
	if data[i] == '0' {
		data[i] = '1'
	} else {
		data[i] = '0'
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ms, err := h.CheckGolden(dir, GoldenCount)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || !strings.Contains(ms[0], "pbio_sparc32") {
		t.Fatalf("perturbed byte not detected: %v", ms)
	}
}

// TestXMLRendersMinimizedFailure pins the reproduction output format.
func TestXMLRendersMinimizedFailure(t *testing.T) {
	s, _ := GenCase(1)
	xml := s.XML()
	if !strings.HasPrefix(xml, "<format name=") || !strings.Contains(xml, "<field name=") {
		t.Fatalf("unexpected spec XML:\n%s", xml)
	}
}
