package conform

import (
	"bytes"
	"io"
	"testing"

	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/transport"
)

// wireCapture is an in-memory connection sink recording the byte stream.
type wireCapture struct {
	buf bytes.Buffer
}

func (w *wireCapture) Write(p []byte) (int, error) { return w.buf.Write(p) }
func (w *wireCapture) Read(p []byte) (int, error)  { return 0, io.EOF }
func (w *wireCapture) Close() error                { return nil }

// TestSendParallelBatchDifferential extends the differential harness to
// the mixed-binding parallel send path: for many generated format pairs,
// a SendParallelBatch interleaving two random formats must emit wire bytes
// identical to a serial Send loop — announce-once metadata for each
// format, each announcement before its format's first data frame, data
// frames in argument order.
func TestSendParallelBatchDifferential(t *testing.T) {
	cases := 40
	if testing.Short() {
		cases = 10
	}
	plats := Platforms()
	for c := 0; c < cases; c++ {
		seedA, seedB := GoldenSeed+int64(2*c), GoldenSeed+int64(2*c+1)
		specA, treeA := GenCase(seedA)
		specB, treeB := GenCase(seedB)
		p := plats[c%len(plats)]

		// One context per connection: formats registered by Bind, values
		// from the generated trees.
		build := func() (*pbio.Context, []transport.Msg) {
			ctx := pbio.NewContext(pbio.WithPlatform(p))
			bind := func(s *Spec, tree []any) (*pbio.Binding, any) {
				f, err := s.Build(p)
				if err != nil {
					t.Fatalf("seed %d/%d: build: %v", seedA, seedB, err)
				}
				v, err := s.BuildStruct(tree)
				if err != nil {
					t.Fatalf("seed %d/%d: BuildStruct: %v", seedA, seedB, err)
				}
				b, err := ctx.Bind(f, v)
				if err != nil {
					t.Fatalf("seed %d/%d: bind: %v", seedA, seedB, err)
				}
				return b, v
			}
			bA, vA := bind(specA, treeA)
			bB, vB := bind(specB, treeB)
			// Interleave so each format's first frame lands mid-batch.
			return ctx, []transport.Msg{
				{Binding: bA, Value: vA},
				{Binding: bA, Value: vA},
				{Binding: bB, Value: vB},
				{Binding: bA, Value: vA},
				{Binding: bB, Value: vB},
				{Binding: bB, Value: vB},
			}
		}

		serialSink := &wireCapture{}
		sctx, serialMsgs := build()
		cs := transport.NewConn(serialSink, sctx)
		for _, m := range serialMsgs {
			if err := cs.Send(m.Binding, m.Value); err != nil {
				t.Fatalf("seed %d/%d: serial send: %v", seedA, seedB, err)
			}
		}

		parSink := &wireCapture{}
		pctx, parMsgs := build()
		cp := transport.NewConn(parSink, pctx, transport.WithParallelEncode(4))
		if err := cp.SendParallelBatch(parMsgs...); err != nil {
			t.Fatalf("seed %d/%d: parallel batch: %v", seedA, seedB, err)
		}
		cp.Close()

		if !bytes.Equal(serialSink.buf.Bytes(), parSink.buf.Bytes()) {
			t.Fatalf("seed %d/%d on %s: parallel mixed-binding wire differs from serial (%d vs %d bytes)\nspec A:\n%s\nspec B:\n%s",
				seedA, seedB, p.Name, parSink.buf.Len(), serialSink.buf.Len(),
				indent(specA.XML(), "  "), indent(specB.XML(), "  "))
		}
	}
}
