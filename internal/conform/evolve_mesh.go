package conform

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"github.com/open-metadata/xmit/internal/discovery"
	"github.com/open-metadata/xmit/internal/meta"
	"github.com/open-metadata/xmit/internal/registry"
)

// The mesh leg extends the evolution axis across a (simulated) broker
// boundary: the chain just registered at the "home" registry is shipped to
// a fresh "remote" registry the way federated brokers ship it — marshalled
// as the full-body /.well-known/xmit-lineages document, re-parsed, and
// merged — and the remote must then be indistinguishable from the home:
//
//   - identical history: version numbering, IDs, canonical bytes, policy;
//   - identical projections: a pinned view resolved from the remote's
//     adopted formats must project data onto bit-identical wire bytes as
//     the same view resolved at the home;
//   - identical policy decisions: the policy-violating head the home
//     rejects must be rejected by the remote too, naming the same field,
//     and the typed error must survive the JSON relay brokers forward it
//     through ("ERR compat <json>").
//
// Any daylight between the two registries is exactly the class of bug that
// lets a subscriber decode the same stream differently depending on which
// broker it happened to attach through.
func (h *Harness) meshLeg(chain *EvolveChain, compiled []*CompiledSpec, home *registry.Registry, st *EvolveStats) error {
	name := chain.Specs[0].Name
	r := newRand(int64(len(chain.Specs))) // deterministic per chain shape

	docs, err := discovery.ParseLineages(discovery.MarshalLineages(discovery.SnapshotLineagesFull(home)))
	if err != nil {
		return fmt.Errorf("mesh leg: lineage document round-trip: %w", err)
	}
	remote := registry.New()
	if _, err := discovery.MergeLineages(remote, docs, "mesh"); err != nil {
		return fmt.Errorf("mesh leg: merging gossiped document: %w", err)
	}
	lh, err := home.Lineage(name)
	if err != nil {
		return fmt.Errorf("mesh leg: home lineage: %w", err)
	}
	lr, err := remote.Lineage(name)
	if err != nil {
		return fmt.Errorf("mesh leg: remote lineage missing after merge: %w", err)
	}
	if lr.Policy() != lh.Policy() {
		return fmt.Errorf("mesh leg: remote policy %s, home %s", lr.Policy(), lh.Policy())
	}
	vh, vr := lh.Versions(), lr.Versions()
	if len(vr) != len(vh) {
		return fmt.Errorf("mesh leg: remote has %d versions, home %d", len(vr), len(vh))
	}
	for i := range vh {
		if vr[i].ID != vh[i].ID || vr[i].Version != vh[i].Version {
			return fmt.Errorf("mesh leg: remote v%d = %s, home %s", i+1, vr[i].ID, vh[i].ID)
		}
		if !bytes.Equal(vr[i].Format.Canonical(), vh[i].Format.Canonical()) {
			return fmt.Errorf("mesh leg: remote v%d canonical bytes differ from home", i+1)
		}
	}

	// Pinned projection through the remote, in each direction the policy
	// promises, pinned to the extremes of the lineage (v1 view of head data
	// and head view of v1 data — the spans a long-lived pinned subscriber
	// actually crosses).  Lineage versions map back to chain specs by format
	// ID: the registry dedupes no-op mutation steps, so the lineage can be
	// shorter than the chain and version numbers are not chain indices.
	specOf := make(map[meta.FormatID]int, len(compiled))
	for v := range compiled {
		id := compiled[v].Format(h.Plats[0].Name).ID()
		if _, ok := specOf[id]; !ok {
			specOf[id] = v
		}
	}
	first, last := vh[0], vh[len(vh)-1]
	lo, ok := specOf[first.ID]
	if !ok {
		return fmt.Errorf("mesh leg: lineage v1 (%s) matches no chain spec", first.ID)
	}
	hi, ok := specOf[last.ID]
	if !ok {
		return fmt.Errorf("mesh leg: lineage head (%s) matches no chain spec", last.ID)
	}
	backward := chain.Policy == registry.PolicyBackward || chain.Policy == registry.PolicyBackwardTransitive ||
		chain.Policy == registry.PolicyFull || chain.Policy == registry.PolicyFullTransitive
	type pinLeg struct{ src, dst, ver int }
	legs := []pinLeg{}
	if backward {
		legs = append(legs, pinLeg{lo, hi, last.Version}) // old data, new pinned view
	}
	if !backward || chain.Policy == registry.PolicyFull || chain.Policy == registry.PolicyFullTransitive {
		legs = append(legs, pinLeg{hi, lo, first.Version}) // new data, old pinned view
	}
	for _, leg := range legs {
		src, dst := leg.src, leg.dst
		tree := RandomValue(r, chain.Specs[src])
		fSrc := compiled[src].Format(h.Plats[0].Name)
		rec, err := chain.Specs[src].BuildRecord(fSrc, tree)
		if err != nil {
			return fmt.Errorf("mesh leg v%d->v%d: build: %w", src+1, dst+1, err)
		}
		wire, err := h.Ctx.EncodeRecordBody(nil, rec)
		if err != nil {
			return fmt.Errorf("mesh leg v%d->v%d: encode: %w", src+1, dst+1, err)
		}
		dec, err := h.Ctx.DecodeRecordBody(fSrc, wire)
		if err != nil {
			return fmt.Errorf("mesh leg v%d->v%d: decode: %w", src+1, dst+1, err)
		}
		// Resolve the pinned view twice: at the home and from the remote's
		// adopted lineage state, as broker B does for a reattaching
		// subscriber.
		hv, err := lh.Resolve(leg.ver)
		if err != nil {
			return fmt.Errorf("mesh leg: home resolve v%d: %w", leg.ver, err)
		}
		rv, err := lr.Resolve(leg.ver)
		if err != nil {
			return fmt.Errorf("mesh leg: remote resolve v%d: %w", leg.ver, err)
		}
		projHome, err := registry.Project(dec, hv.Format)
		if err != nil {
			return fmt.Errorf("mesh leg v%d->v%d: home project: %w", src+1, dst+1, err)
		}
		wireHome, err := h.Ctx.EncodeRecordBody(nil, projHome)
		if err != nil {
			return fmt.Errorf("mesh leg v%d->v%d: home re-encode: %w", src+1, dst+1, err)
		}
		projRemote, err := registry.Project(dec, rv.Format)
		if err != nil {
			return fmt.Errorf("mesh leg v%d->v%d: remote project: %w", src+1, dst+1, err)
		}
		wireRemote, err := h.Ctx.EncodeRecordBody(nil, projRemote)
		if err != nil {
			return fmt.Errorf("mesh leg v%d->v%d: remote re-encode: %w", src+1, dst+1, err)
		}
		if !bytes.Equal(wireRemote, wireHome) {
			return fmt.Errorf("mesh leg v%d->v%d: projection through the remote registry is not bit-identical to the home (%d vs %d bytes)",
				src+1, dst+1, len(wireRemote), len(wireHome))
		}
		// And the remote projection still matches the declarative reference.
		want, err := ProjectTree(chain.Specs[src], chain.Specs[dst], tree)
		if err != nil {
			return fmt.Errorf("mesh leg v%d->v%d: reference projection: %w", src+1, dst+1, err)
		}
		dec2, err := h.Ctx.DecodeRecordBody(rv.Format, wireRemote)
		if err != nil {
			return fmt.Errorf("mesh leg v%d->v%d: re-decode: %w", src+1, dst+1, err)
		}
		got, err := chain.Specs[dst].ExtractRecord(dec2)
		if err != nil {
			return fmt.Errorf("mesh leg v%d->v%d: extract: %w", src+1, dst+1, err)
		}
		if !EqualTrees(want, got) {
			return fmt.Errorf("mesh leg v%d->v%d: remote projection differs from reference\n    want %s\n    got  %s",
				src+1, dst+1, FormatTree(want), FormatTree(got))
		}
		st.MeshLegs++
		st.Checks += 6
	}

	// Negative control, remote edition: the shape-changed head a home
	// registration rejects must be rejected by the remote's adopted lineage
	// too — same decision wherever the registration lands — with the typed
	// diff naming the same field even after the error crosses a broker
	// boundary as JSON.
	if bad, field := breakHead(chain.Specs[len(chain.Specs)-1]); bad != nil {
		cs, err := bad.Compile(h.Plats[:1])
		if err != nil {
			return nil
		}
		_, err = remote.Register(name, cs.Format(h.Plats[0].Name), "conform-remote")
		var ce *registry.CompatError
		if !errors.As(err, &ce) {
			return fmt.Errorf("mesh leg: remote registry accepted a shape change of field %q (err=%v)", field, err)
		}
		data, err := json.Marshal(ce)
		if err != nil {
			return fmt.Errorf("mesh leg: encoding compat error: %w", err)
		}
		relayed, err := registry.DecodeCompatJSON(data)
		if err != nil {
			return fmt.Errorf("mesh leg: compat error did not survive the JSON relay: %w", err)
		}
		if relayed.Lineage != ce.Lineage || relayed.Policy != ce.Policy || relayed.FromVersion != ce.FromVersion {
			return fmt.Errorf("mesh leg: relayed compat error lost identity: %+v vs %+v", relayed, ce)
		}
		named := false
		for _, v := range relayed.Violations {
			if strings.EqualFold(v.Path, field) && v.Change == meta.ShapeChanged {
				named = true
			}
		}
		if !named {
			return fmt.Errorf("mesh leg: relayed rejection %v does not name mutated field %q", relayed.Violations, field)
		}
	}
	return nil
}
