// Package conform is the differential conformance harness: it proves that
// every marshaling backend in this repository (pbio struct and record paths,
// xdr, cdr, xmlwire, mpidt) decodes every value to exactly the same result,
// for formats laid out on every simulated platform pair.
//
// The paper's central correctness claim is that run-time XML metadata is
// exactly as faithful as compiled-in native metadata — the run-time path
// costs registration time, never fidelity.  Nothing short of a differential
// harness demonstrates that: this package generates random format metadata
// and matching values, round-trips each value through every codec and every
// sender/receiver platform pair, and flags any codec whose decoded value
// disagrees with PBIO's.
//
// Three layers:
//
//   - A deterministic property-based generator (gen.go) producing Specs —
//     platform-independent format descriptions — and random values.
//   - A differential engine (diff.go) running each (spec, value) through
//     every codec × sender platform × receiver platform combination.
//   - A golden wire-vector corpus (golden.go, testdata/golden/) that pins
//     every codec's exact wire bytes per platform, so silent wire-format
//     drift fails CI.
//
// The cmd/xmitconform tool drives all three from the command line.
package conform

import (
	"fmt"
	"reflect"
	"strings"

	"github.com/open-metadata/xmit/internal/meta"
	"github.com/open-metadata/xmit/internal/platform"
)

// FieldSpec describes one field independent of any platform: wire sizes are
// explicit, so the same spec laid out on different platforms differs only in
// offsets, alignment, byte order, and pointer-slot width.  (The platform
// "long" class, whose size itself differs between ILP32 and LP64 ABIs, is
// deliberately not expressible: a cross-platform value identity for it does
// not exist, which is a property of the C type system, not of any codec.)
type FieldSpec struct {
	// Name is the field name (unique per struct level, case-insensitive,
	// and a valid XML element name).
	Name string
	// Kind classifies the value.
	Kind meta.Kind
	// Size is the element wire size in bytes.  Ignored for String (always
	// 1 per character) and Struct (the subformat's size) fields.
	Size int
	// StaticDim declares a fixed-size array.
	StaticDim int
	// LengthField names the earlier integer field holding a dynamic
	// array's element count.  Length fields are never part of generated Go
	// struct types or value trees: their wire value is synthesized from
	// the slice length, which is what all encoders treat as authoritative.
	LengthField string
	// Sub is the nested spec for Struct fields.
	Sub *Spec
}

// IsDynamic reports whether the field is a dynamic array.
func (fs *FieldSpec) IsDynamic() bool { return fs.LengthField != "" }

// Spec is a platform-independent message format description.
type Spec struct {
	Name   string
	Fields []FieldSpec
}

// lengthFieldNames returns the lower-cased names of fields used as dynamic
// array lengths.
func (s *Spec) lengthFieldNames() map[string]bool {
	set := map[string]bool{}
	for i := range s.Fields {
		if lf := s.Fields[i].LengthField; lf != "" {
			set[strings.ToLower(lf)] = true
		}
	}
	return set
}

// Build lays the spec out on a platform, producing the concrete wire format
// a sender on that machine would register.
func (s *Spec) Build(p *platform.Platform) (*meta.Format, error) {
	defs := make([]meta.FieldDef, len(s.Fields))
	for i := range s.Fields {
		fs := &s.Fields[i]
		def := meta.FieldDef{
			Name:        fs.Name,
			Kind:        fs.Kind,
			StaticDim:   fs.StaticDim,
			LengthField: fs.LengthField,
		}
		switch fs.Kind {
		case meta.String:
			// Size is implicit (pointer slot).
		case meta.Struct:
			sub, err := fs.Sub.Build(p)
			if err != nil {
				return nil, err
			}
			def.Sub = sub
		default:
			// Explicit sizes keep element widths identical on every
			// platform; layout still differs through alignment rules
			// (x86 caps 8-byte alignment at 4) and pointer slots.
			def.Class = platform.Int
			def.ExplicitSize = fs.Size
		}
		defs[i] = def
	}
	return meta.Build(s.Name, p, defs)
}

// GoType synthesizes the Go struct type bound to the spec: one exported
// field per non-length spec field, tagged with the metadata name.  Element
// types follow the wire width exactly (int8..int64, uint8..uint64, float32/
// float64), so a decoded Go value holds precisely the information the wire
// carried and no codec can hide a truncation behind a wider native type.
// Arrays (static and dynamic) are slices.
func (s *Spec) GoType() (reflect.Type, error) {
	lengths := s.lengthFieldNames()
	var sf []reflect.StructField
	for i := range s.Fields {
		fs := &s.Fields[i]
		if lengths[strings.ToLower(fs.Name)] {
			continue // synthesized from the slice length
		}
		et, err := fs.goElemType()
		if err != nil {
			return nil, err
		}
		ft := et
		if fs.IsDynamic() || fs.StaticDim > 0 {
			ft = reflect.SliceOf(et)
		}
		sf = append(sf, reflect.StructField{
			Name: fmt.Sprintf("F%d", i),
			Type: ft,
			Tag:  reflect.StructTag(fmt.Sprintf(`xmit:"%s"`, fs.Name)),
		})
	}
	return reflect.StructOf(sf), nil
}

func (fs *FieldSpec) goElemType() (reflect.Type, error) {
	switch fs.Kind {
	case meta.Integer:
		switch fs.Size {
		case 1:
			return reflect.TypeOf(int8(0)), nil
		case 2:
			return reflect.TypeOf(int16(0)), nil
		case 4:
			return reflect.TypeOf(int32(0)), nil
		case 8:
			return reflect.TypeOf(int64(0)), nil
		}
	case meta.Unsigned, meta.Enum:
		switch fs.Size {
		case 1:
			return reflect.TypeOf(uint8(0)), nil
		case 2:
			return reflect.TypeOf(uint16(0)), nil
		case 4:
			return reflect.TypeOf(uint32(0)), nil
		case 8:
			return reflect.TypeOf(uint64(0)), nil
		}
	case meta.Float:
		switch fs.Size {
		case 4:
			return reflect.TypeOf(float32(0)), nil
		case 8:
			return reflect.TypeOf(float64(0)), nil
		}
	case meta.Char:
		return reflect.TypeOf(byte(0)), nil
	case meta.Boolean:
		return reflect.TypeOf(false), nil
	case meta.String:
		return reflect.TypeOf(""), nil
	case meta.Struct:
		return fs.Sub.GoType()
	}
	return nil, fmt.Errorf("conform: field %q: no Go type for %s size %d", fs.Name, fs.Kind, fs.Size)
}

// XML renders the spec as a compact format-description document — the
// reproduction one-liner printed when a differential failure is minimized.
func (s *Spec) XML() string {
	var b strings.Builder
	s.appendXML(&b, 0)
	return b.String()
}

func (s *Spec) appendXML(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s<format name=%q>\n", indent, s.Name)
	for i := range s.Fields {
		fs := &s.Fields[i]
		fmt.Fprintf(b, "%s  <field name=%q kind=%q", indent, fs.Name, fs.Kind.String())
		if fs.Kind != meta.String && fs.Kind != meta.Struct {
			fmt.Fprintf(b, " size=\"%d\"", fs.Size)
		}
		if fs.StaticDim > 0 {
			fmt.Fprintf(b, " dim=\"%d\"", fs.StaticDim)
		}
		if fs.LengthField != "" {
			fmt.Fprintf(b, " lengthField=%q", fs.LengthField)
		}
		if fs.Kind == meta.Struct {
			b.WriteString(">\n")
			fs.Sub.appendXML(b, depth+2)
			fmt.Fprintf(b, "%s  </field>\n", indent)
		} else {
			b.WriteString("/>\n")
		}
	}
	fmt.Fprintf(b, "%s</format>\n", indent)
}
