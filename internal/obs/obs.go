// Package obs is a dependency-free observability core for the metadata
// path: atomic counters and gauges, nanosecond-resolution latency
// histograms, and named registries that export themselves as expvar-style
// JSON or a plain-text /metrics HTTP endpoint.
//
// The package exists because the paper's central quantitative claim — that
// XML metadata costs only a bounded registration-time factor (the Remote
// Discovery Multiplier, §4) — is a claim about production behaviour, and a
// production service must be able to report the measured value, not just
// reproduce it in a benchmark harness.  Every metric here is lock-free on
// the hot path (a single atomic add), so instrumentation never perturbs
// what it measures.
package obs

import (
	"expvar"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value that may go up or down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Func is a metric whose value is computed on demand — the way to expose a
// ratio (like the Remote Discovery Multiplier) or an externally owned
// atomic counter without copying it into the registry.
type Func func() float64

// Registry is a named collection of metrics.  Metric creation is
// get-or-create and safe for concurrent use; reads of metric values are
// lock-free.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]any // *Counter | *Gauge | *Histogram | Func
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]any)}
}

var (
	namedMu sync.Mutex
	named   = make(map[string]*Registry)
)

// Named returns the process-wide registry with the given name, creating it
// on first use.  Named registries let independent subsystems (discovery,
// transport, a server main) share one export surface without plumbing a
// *Registry through every constructor.
func Named(name string) *Registry {
	namedMu.Lock()
	defer namedMu.Unlock()
	r, ok := named[name]
	if !ok {
		r = NewRegistry()
		named[name] = r
	}
	return r
}

// Default returns the default process-wide registry.
func Default() *Registry { return Named("default") }

// get returns the metric stored under name, creating it with mk when
// absent.  A name registered with a different metric type panics: that is
// a programming error, not a runtime condition.
func (r *Registry) get(name string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := mk()
	r.metrics[name] = m
	return m
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	m := r.get(name, func() any { return new(Counter) })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is %T, not a counter", name, m))
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.get(name, func() any { return new(Gauge) })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is %T, not a gauge", name, m))
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	m := r.get(name, func() any { return new(Histogram) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q is %T, not a histogram", name, m))
	}
	return h
}

// RegisterFunc installs (or replaces) a computed metric.
func (r *Registry) RegisterFunc(name string, fn Func) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics[name] = fn
}

// Unregister removes a metric, reporting whether it was registered.  It
// exists for dynamic metric owners — a mesh link that is torn down when its
// peer leaves, say — so a long-lived registry doesn't accumulate dead
// entries.  Callers holding a pointer to the removed metric may keep using
// it; it simply no longer exports.
func (r *Registry) Unregister(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.metrics[name]
	delete(r.metrics, name)
	return ok
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Each calls fn for every metric in name order.  The metric is one of
// *Counter, *Gauge, *Histogram, or Func.
func (r *Registry) Each(fn func(name string, metric any)) {
	names := r.Names()
	for _, n := range names {
		r.mu.Lock()
		m := r.metrics[n]
		r.mu.Unlock()
		if m != nil {
			fn(n, m)
		}
	}
}

// Value returns the scalar value of a counter, gauge, or func metric, or
// the observation count of a histogram.  ok is false when the name is not
// registered.  It exists for tests and programmatic health checks.
func (r *Registry) Value(name string) (v float64, ok bool) {
	r.mu.Lock()
	m := r.metrics[name]
	r.mu.Unlock()
	switch m := m.(type) {
	case *Counter:
		return float64(m.Value()), true
	case *Gauge:
		return float64(m.Value()), true
	case *Histogram:
		return float64(m.Count()), true
	case Func:
		return m(), true
	default:
		return 0, false
	}
}

// PublishExpvar publishes the registry under the given expvar name, so its
// JSON appears on the standard /debug/vars page alongside the runtime's
// own variables.  Publishing the same name twice panics (an expvar rule),
// so call it once per process per registry.
func PublishExpvar(name string, r *Registry) {
	expvar.Publish(name, expvar.Func(func() any { return r.jsonValue() }))
}
