package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets.  Bucket i
// holds observations v (in nanoseconds) with bits.Len64(v) == i, i.e.
// 2^(i-1) <= v < 2^i; bucket 0 holds v == 0.  63 buckets cover every
// possible int64 nanosecond value (≈292 years), so recording never
// saturates or drops.
const histBuckets = 64

// Histogram is a fixed-size, lock-free latency histogram with nanosecond
// resolution and power-of-two buckets.  Recording is a pair of atomic adds;
// snapshots are consistent enough for monitoring (buckets are read one at a
// time, not under a lock).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Record adds one observation of ns nanoseconds (negative values clamp to
// zero).
func (h *Histogram) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
}

// Observe records a duration.
func (h *Histogram) Observe(d time.Duration) { h.Record(d.Nanoseconds()) }

// Time runs fn and records its wall-clock duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Observe(time.Since(start))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observations in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation in nanoseconds.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the mean observation in nanoseconds (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an estimate of the q-th quantile (0 <= q <= 1) in
// nanoseconds.  The estimate is the geometric midpoint of the power-of-two
// bucket containing the quantile, so it is accurate to within a factor of
// √2 — plenty for latency monitoring, where order of magnitude is what
// matters.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0
			}
			lo := float64(int64(1) << (i - 1))
			hi := lo * 2
			return math.Sqrt(lo * hi)
		}
	}
	return float64(h.max.Load())
}

// Snapshot is a point-in-time copy of a histogram's aggregate statistics.
type Snapshot struct {
	Count int64
	Sum   int64
	Max   int64
	Mean  float64
	P50   float64
	P90   float64
	P99   float64
}

// Snapshot returns the aggregate statistics of the histogram.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}
