package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// jsonValue renders the registry as a plain map, the shape both the JSON
// export and the expvar publication share.  Histograms become objects with
// their aggregate statistics; everything else is a number.
func (r *Registry) jsonValue() map[string]any {
	out := make(map[string]any)
	r.Each(func(name string, m any) {
		switch m := m.(type) {
		case *Counter:
			out[name] = m.Value()
		case *Gauge:
			out[name] = m.Value()
		case *Histogram:
			s := m.Snapshot()
			out[name] = map[string]any{
				"count":   s.Count,
				"sum_ns":  s.Sum,
				"max_ns":  s.Max,
				"mean_ns": s.Mean,
				"p50_ns":  s.P50,
				"p90_ns":  s.P90,
				"p99_ns":  s.P99,
			}
		case Func:
			out[name] = m()
		}
	})
	return out
}

// WriteJSON writes the registry as a single JSON object, expvar style:
// metric names map to numbers, histograms to {count, sum_ns, mean_ns, ...}.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.jsonValue())
}

// WriteText writes the registry in a flat, line-oriented text form
// (`name value`, one metric per line, names sorted) — the format the
// /metrics endpoint serves by default.  Histograms expand to _count, _sum_ns,
// _mean_ns, _p50_ns, _p90_ns, _p99_ns, and _max_ns lines.
func (r *Registry) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	r.Each(func(name string, m any) {
		switch m := m.(type) {
		case *Counter:
			p("%s %d\n", name, m.Value())
		case *Gauge:
			p("%s %d\n", name, m.Value())
		case *Histogram:
			s := m.Snapshot()
			p("%s_count %d\n", name, s.Count)
			p("%s_sum_ns %d\n", name, s.Sum)
			p("%s_mean_ns %g\n", name, s.Mean)
			p("%s_p50_ns %g\n", name, s.P50)
			p("%s_p90_ns %g\n", name, s.P90)
			p("%s_p99_ns %g\n", name, s.P99)
			p("%s_max_ns %d\n", name, s.Max)
		case Func:
			p("%s %g\n", name, m())
		}
	})
	return err
}

// Handler returns an http.Handler serving the registry: plain text by
// default, JSON when the request has ?format=json or an Accept header
// preferring application/json.  Mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		asJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if asJSON {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			if req.Method == http.MethodHead {
				return
			}
			r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		r.WriteText(w)
	})
}
