package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("hits"); again != c {
		t.Error("Counter is not get-or-create")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("n").Value(); v != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", v)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, ns := range []int64{100, 200, 400, 800, 100_000} {
		h.Record(ns)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 101_500 {
		t.Errorf("sum = %d", h.Sum())
	}
	if h.Max() != 100_000 {
		t.Errorf("max = %d", h.Max())
	}
	if m := h.Mean(); m != 101_500.0/5 {
		t.Errorf("mean = %g", m)
	}
	// The median observation is 400ns; the power-of-two bucket estimate
	// must land within a factor of two of it.
	if p50 := h.Quantile(0.5); p50 < 200 || p50 > 800 {
		t.Errorf("p50 = %g, want within [200, 800]", p50)
	}
	// p99 must land in the top bucket's range.
	if p99 := h.Quantile(0.99); p99 < 50_000 || p99 > 200_000 {
		t.Errorf("p99 = %g", p99)
	}
	h.Observe(2 * time.Microsecond)
	if h.Count() != 6 {
		t.Errorf("Observe did not record")
	}
	var zero Histogram
	if zero.Quantile(0.5) != 0 || zero.Mean() != 0 {
		t.Error("empty histogram quantile/mean should be 0")
	}
	zero.Record(-5)
	if zero.Sum() != 0 || zero.Count() != 1 {
		t.Error("negative observation should clamp to 0")
	}
}

func TestRegistryExports(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(-1)
	r.Histogram("lat_ns").Record(1000)
	r.RegisterFunc("ratio", func() float64 { return 2.5 })

	var text strings.Builder
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a_total 3", "b -1", "lat_ns_count 1", "ratio 2.5"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text export missing %q:\n%s", want, text.String())
		}
	}

	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &m); err != nil {
		t.Fatalf("JSON export is not valid JSON: %v", err)
	}
	if m["a_total"].(float64) != 3 || m["ratio"].(float64) != 2.5 {
		t.Errorf("JSON export = %v", m)
	}
	hist, ok := m["lat_ns"].(map[string]any)
	if !ok || hist["count"].(float64) != 1 {
		t.Errorf("histogram JSON = %v", m["lat_ns"])
	}

	if v, ok := r.Value("a_total"); !ok || v != 3 {
		t.Errorf("Value(a_total) = %v, %v", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Error("Value of unregistered name should report !ok")
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "x 1") {
		t.Errorf("text endpoint = %q", body[:n])
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}

	resp, err = ts.Client().Get(ts.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("json endpoint: %v", err)
	}
	resp.Body.Close()
	if m["x"].(float64) != 1 {
		t.Errorf("json endpoint = %v", m)
	}
}

func TestNamedRegistries(t *testing.T) {
	a := Named("test-a")
	b := Named("test-a")
	if a != b {
		t.Error("Named should return the same registry for the same name")
	}
	if Named("test-b") == a {
		t.Error("distinct names should yield distinct registries")
	}
	if Default() != Named("default") {
		t.Error("Default must be the registry named \"default\"")
	}
}
