// Package hydro reimplements the paper's demonstration application: the
// NCSA component-based visualization system for hydrology data (paper §4.5,
// Figure 5).  Distributed components — a data source, a presend filter, a
// 2-D flow solver, a coupler, and Vis5D-style visualization sinks — share a
// set of message formats and communicate over the PBIO transport with
// metadata discovered through XMIT.
//
// The paper's hydrology input files are not available; the data source
// generates synthetic terrain and rainfall with a seeded generator, and the
// flow solver is a real 2-D shallow-water relaxation kernel, so every
// message format carries live, realistically-shaped payloads.
package hydro

import (
	"github.com/open-metadata/xmit/internal/core"
	"github.com/open-metadata/xmit/internal/meta"
	"github.com/open-metadata/xmit/internal/pbio"
)

// SchemaDocument is the application's shared message-format document, the
// artifact the paper hosts on an HTTP server.  Structure sizes on the
// paper's sparc32 platform match Figure 6: SimpleData 12 B, JoinRequest
// 20 B, ControlMsg 44 B, GridMeta 152 B.
const SchemaDocument = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="JoinRequest">
    <xsd:element name="name" type="xsd:string" />
    <xsd:element name="server" type="xsd:unsignedLong" />
    <xsd:element name="ip_addr" type="xsd:unsignedLong" />
    <xsd:element name="pid" type="xsd:unsignedLong" />
    <xsd:element name="ds_addr" type="xsd:unsignedLong" />
  </xsd:complexType>
  <xsd:complexType name="SimpleData">
    <xsd:element name="timestep" type="xsd:integer" />
    <xsd:element name="data" type="xsd:float" minOccurs="0" maxOccurs="*"
        dimensionPlacement="before" dimensionName="size" />
  </xsd:complexType>
  <xsd:complexType name="ControlMsg">
    <xsd:element name="command" type="xsd:integer" />
    <xsd:element name="timestep" type="xsd:integer" />
    <xsd:element name="dt" type="xsd:float" />
    <xsd:element name="iso_level" type="xsd:float" />
    <xsd:element name="pan_x" type="xsd:float" />
    <xsd:element name="pan_y" type="xsd:float" />
    <xsd:element name="zoom" type="xsd:float" />
    <xsd:element name="palette_id" type="xsd:integer" />
    <xsd:element name="refresh_rate" type="xsd:integer" />
    <xsd:element name="flags" type="xsd:unsignedInt" />
    <xsd:element name="quality" type="xsd:integer" />
  </xsd:complexType>
  <xsd:complexType name="GridMeta">
    <xsd:element name="nx" type="xsd:integer" />
    <xsd:element name="ny" type="xsd:integer" />
    <xsd:element name="nsteps" type="xsd:integer" />
    <xsd:element name="step_index" type="xsd:integer" />
    <xsd:element name="x0" type="xsd:float" />
    <xsd:element name="y0" type="xsd:float" />
    <xsd:element name="dx" type="xsd:float" />
    <xsd:element name="dy" type="xsd:float" />
    <xsd:element name="t" type="xsd:float" />
    <xsd:element name="dt" type="xsd:float" />
    <xsd:element name="gravity" type="xsd:float" />
    <xsd:element name="viscosity" type="xsd:float" />
    <xsd:element name="h_min" type="xsd:float" />
    <xsd:element name="h_max" type="xsd:float" />
    <xsd:element name="h_mean" type="xsd:float" />
    <xsd:element name="u_min" type="xsd:float" />
    <xsd:element name="u_max" type="xsd:float" />
    <xsd:element name="v_min" type="xsd:float" />
    <xsd:element name="v_max" type="xsd:float" />
    <xsd:element name="energy_k" type="xsd:float" />
    <xsd:element name="energy_p" type="xsd:float" />
    <xsd:element name="mass" type="xsd:float" />
    <xsd:element name="courant" type="xsd:float" />
    <xsd:element name="inflow" type="xsd:float" />
    <xsd:element name="outflow" type="xsd:float" />
    <xsd:element name="rain_rate" type="xsd:float" />
    <xsd:element name="evap_rate" type="xsd:float" />
    <xsd:element name="seed_lo" type="xsd:unsignedInt" />
    <xsd:element name="seed_hi" type="xsd:unsignedInt" />
    <xsd:element name="boundary_n" type="xsd:integer" />
    <xsd:element name="boundary_s" type="xsd:integer" />
    <xsd:element name="boundary_e" type="xsd:integer" />
    <xsd:element name="boundary_w" type="xsd:integer" />
    <xsd:element name="palette_id" type="xsd:integer" />
    <xsd:element name="iso_levels" type="xsd:integer" />
    <xsd:element name="frame_id" type="xsd:integer" />
    <xsd:element name="quality" type="xsd:integer" />
    <xsd:element name="checksum" type="xsd:unsignedInt" />
  </xsd:complexType>
</xsd:schema>`

// JoinRequest is sent by a component attaching to the coupler (paper
// Figure 4).  20 bytes on sparc32.
type JoinRequest struct {
	Name   string `xmit:"name"`
	Server uint32 `xmit:"server"`
	IPAddr uint32 `xmit:"ip_addr"`
	Pid    uint32 `xmit:"pid"`
	DsAddr uint32 `xmit:"ds_addr"`
}

// SimpleData carries one scalar field of the simulation grid (paper
// Figures 1 and 4).  12 bytes on sparc32 plus the array payload.
type SimpleData struct {
	Timestep int32     `xmit:"timestep"`
	Size     int32     `xmit:"size"`
	Data     []float32 `xmit:"data"`
}

// Control commands exchanged on the GUI feedback channels.
const (
	CmdNone     = 0
	CmdPause    = 1
	CmdResume   = 2
	CmdSetView  = 3
	CmdSetIso   = 4
	CmdShutdown = 5
)

// ControlMsg travels the dashed control/feedback channels of Figure 5.
// 44 bytes on sparc32.
type ControlMsg struct {
	Command     int32   `xmit:"command"`
	Timestep    int32   `xmit:"timestep"`
	Dt          float32 `xmit:"dt"`
	IsoLevel    float32 `xmit:"iso_level"`
	PanX        float32 `xmit:"pan_x"`
	PanY        float32 `xmit:"pan_y"`
	Zoom        float32 `xmit:"zoom"`
	PaletteID   int32   `xmit:"palette_id"`
	RefreshRate int32   `xmit:"refresh_rate"`
	Flags       uint32  `xmit:"flags"`
	Quality     int32   `xmit:"quality"`
}

// GridMeta describes the simulation grid and per-step statistics.  It is
// the primitive-heavy 152-byte structure whose registration the paper's
// Figure 6 shows as the worst case (RDM 4): many leaf fields mean much
// more XML to parse relative to its byte size.
type GridMeta struct {
	Nx        int32   `xmit:"nx"`
	Ny        int32   `xmit:"ny"`
	Nsteps    int32   `xmit:"nsteps"`
	StepIndex int32   `xmit:"step_index"`
	X0        float32 `xmit:"x0"`
	Y0        float32 `xmit:"y0"`
	Dx        float32 `xmit:"dx"`
	Dy        float32 `xmit:"dy"`
	T         float32 `xmit:"t"`
	Dt        float32 `xmit:"dt"`
	Gravity   float32 `xmit:"gravity"`
	Viscosity float32 `xmit:"viscosity"`
	HMin      float32 `xmit:"h_min"`
	HMax      float32 `xmit:"h_max"`
	HMean     float32 `xmit:"h_mean"`
	UMin      float32 `xmit:"u_min"`
	UMax      float32 `xmit:"u_max"`
	VMin      float32 `xmit:"v_min"`
	VMax      float32 `xmit:"v_max"`
	EnergyK   float32 `xmit:"energy_k"`
	EnergyP   float32 `xmit:"energy_p"`
	Mass      float32 `xmit:"mass"`
	Courant   float32 `xmit:"courant"`
	Inflow    float32 `xmit:"inflow"`
	Outflow   float32 `xmit:"outflow"`
	RainRate  float32 `xmit:"rain_rate"`
	EvapRate  float32 `xmit:"evap_rate"`
	SeedLo    uint32  `xmit:"seed_lo"`
	SeedHi    uint32  `xmit:"seed_hi"`
	BoundaryN int32   `xmit:"boundary_n"`
	BoundaryS int32   `xmit:"boundary_s"`
	BoundaryE int32   `xmit:"boundary_e"`
	BoundaryW int32   `xmit:"boundary_w"`
	PaletteID int32   `xmit:"palette_id"`
	IsoLevels int32   `xmit:"iso_levels"`
	FrameID   int32   `xmit:"frame_id"`
	Quality   int32   `xmit:"quality"`
	Checksum  uint32  `xmit:"checksum"`
}

// FormatNames lists the application formats in the order Figure 6 plots
// their structure sizes (12, 20, 44, 152 on sparc32).
var FormatNames = []string{"SimpleData", "JoinRequest", "ControlMsg", "GridMeta"}

// Formats holds the registered application formats and their binding
// tokens for one PBIO context.
type Formats struct {
	JoinRequest *meta.Format
	SimpleData  *meta.Format
	ControlMsg  *meta.Format
	GridMeta    *meta.Format
}

// LoadFormats discovers the application metadata through an XMIT toolkit
// (from the given URL, or from the embedded document when url is empty) and
// registers every format with the context.
func LoadFormats(tk *core.Toolkit, url string, ctx *pbio.Context) (*Formats, error) {
	var err error
	if url != "" {
		_, err = tk.LoadURL(url)
	} else {
		_, err = tk.LoadString(SchemaDocument)
	}
	if err != nil {
		return nil, err
	}
	f := &Formats{}
	for _, spec := range []struct {
		name string
		dst  **meta.Format
	}{
		{"JoinRequest", &f.JoinRequest},
		{"SimpleData", &f.SimpleData},
		{"ControlMsg", &f.ControlMsg},
		{"GridMeta", &f.GridMeta},
	} {
		tok, err := tk.Register(spec.name, ctx)
		if err != nil {
			return nil, err
		}
		*spec.dst = tok.Format
	}
	return f, nil
}
