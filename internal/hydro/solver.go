package hydro

import (
	"fmt"
	"math"
	"math/rand"
)

// Config parameterises a simulation run.
type Config struct {
	// Nx, Ny are the grid dimensions.
	Nx, Ny int
	// Dx, Dy are the cell sizes in metres (default 1).
	Dx, Dy float64
	// Dt is the time step in seconds (default chosen for stability).
	Dt float64
	// Gravity is the gravitational acceleration (default 9.81).
	Gravity float64
	// Damping is the velocity damping factor per step (default 0.998).
	Damping float64
	// Seed drives the synthetic terrain and initial conditions.
	Seed int64
	// Rain adds uniform rainfall (metres of water per step) when > 0.
	Rain float64
}

func (c *Config) applyDefaults() error {
	if c.Nx < 3 || c.Ny < 3 {
		return fmt.Errorf("hydro: grid %dx%d too small (need at least 3x3)", c.Nx, c.Ny)
	}
	if c.Dx == 0 {
		c.Dx = 1
	}
	if c.Dy == 0 {
		c.Dy = 1
	}
	if c.Gravity == 0 {
		c.Gravity = 9.81
	}
	if c.Dt == 0 {
		// CFL-ish default for ~1 m water depth.
		c.Dt = 0.1 * math.Min(c.Dx, c.Dy) / math.Sqrt(c.Gravity*2)
	}
	if c.Damping == 0 {
		c.Damping = 0.998
	}
	return nil
}

// Sim is a 2-D shallow-water simulation on a regular grid: water depth H
// over terrain B, with depth-averaged velocities U, V.  The integration is
// the classic height-field scheme (advection-free momentum update plus
// continuity), reflective boundaries, and gentle damping — simple, stable,
// and produces realistically structured data for the messaging layers.
type Sim struct {
	cfg  Config
	Step int
	T    float64

	H, U, V, B []float64
	h0         []float64 // previous-step depths, for a conservative update
	rain       float64
	rng        *rand.Rand
}

// NewSim builds a simulation with synthetic terrain and a dam-break
// initial condition derived from the seed.
func NewSim(cfg Config) (*Sim, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	n := cfg.Nx * cfg.Ny
	s := &Sim{
		cfg:  cfg,
		H:    make([]float64, n),
		U:    make([]float64, n),
		V:    make([]float64, n),
		B:    make([]float64, n),
		h0:   make([]float64, n),
		rain: cfg.Rain,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	s.generateTerrain()
	s.initialWater()
	return s, nil
}

// Config returns the (defaulted) configuration.
func (s *Sim) Config() Config { return s.cfg }

func (s *Sim) idx(i, j int) int { return j*s.cfg.Nx + i }

// generateTerrain sums a gentle slope with a few random Gaussian hills —
// the stand-in for the NCSA hydrology dataset (see DESIGN.md).
func (s *Sim) generateTerrain() {
	nx, ny := s.cfg.Nx, s.cfg.Ny
	type hill struct{ cx, cy, amp, sig float64 }
	hills := make([]hill, 6)
	for k := range hills {
		hills[k] = hill{
			cx:  s.rng.Float64() * float64(nx),
			cy:  s.rng.Float64() * float64(ny),
			amp: 0.2 + 0.8*s.rng.Float64(),
			sig: 3 + s.rng.Float64()*float64(nx)/6,
		}
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			b := 0.05 * float64(i) / float64(nx) // valley slope
			for _, h := range hills {
				dx, dy := float64(i)-h.cx, float64(j)-h.cy
				b += h.amp * math.Exp(-(dx*dx+dy*dy)/(2*h.sig*h.sig))
			}
			s.B[s.idx(i, j)] = b
		}
	}
}

// initialWater sets a dam-break column in one quadrant over a thin film.
func (s *Sim) initialWater() {
	nx, ny := s.cfg.Nx, s.cfg.Ny
	cx := nx/4 + s.rng.Intn(nx/4)
	cy := ny/4 + s.rng.Intn(ny/4)
	r := float64(min(nx, ny)) / 5
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			h := 0.1 // thin film everywhere keeps the scheme smooth
			dx, dy := float64(i-cx), float64(j-cy)
			if d := math.Sqrt(dx*dx + dy*dy); d < r {
				h += 1.5 * (1 - d/r)
			}
			s.H[s.idx(i, j)] = h
		}
	}
}

// StepOnce advances the simulation one time step.
func (s *Sim) StepOnce() {
	nx, ny := s.cfg.Nx, s.cfg.Ny
	dt, g := s.cfg.Dt, s.cfg.Gravity
	dx, dy := s.cfg.Dx, s.cfg.Dy

	// Momentum: accelerate down the free-surface gradient.
	for j := 0; j < ny; j++ {
		for i := 0; i < nx-1; i++ {
			k := s.idx(i, j)
			etaL := s.H[k] + s.B[k]
			etaR := s.H[k+1] + s.B[k+1]
			s.U[k] += -g * dt * (etaR - etaL) / dx
			s.U[k] *= s.cfg.Damping
		}
	}
	for j := 0; j < ny-1; j++ {
		for i := 0; i < nx; i++ {
			k := s.idx(i, j)
			etaD := s.H[k] + s.B[k]
			etaU := s.H[k+nx] + s.B[k+nx]
			s.V[k] += -g * dt * (etaU - etaD) / dy
			s.V[k] *= s.cfg.Damping
		}
	}
	// Continuity: move water along the staggered velocities.  Fluxes are
	// computed from the previous step's depths so that each interface
	// contributes equal and opposite amounts to its two cells — exact
	// mass conservation up to rounding.
	copy(s.h0, s.H)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			k := s.idx(i, j)
			var dq float64
			if i < nx-1 {
				dq -= flux(s.U[k], s.h0[k], s.h0[k+1]) * dt / dx
			}
			if i > 0 {
				dq += flux(s.U[k-1], s.h0[k-1], s.h0[k]) * dt / dx
			}
			if j < ny-1 {
				dq -= flux(s.V[k], s.h0[k], s.h0[k+nx]) * dt / dy
			}
			if j > 0 {
				dq += flux(s.V[k-nx], s.h0[k-nx], s.h0[k]) * dt / dy
			}
			s.H[k] += dq + s.rain
			if s.H[k] < 0 {
				s.H[k] = 0
			}
		}
	}
	s.Step++
	s.T += dt
}

// flux upwinds the depth carried by an interface velocity.
func flux(vel, hUp, hDown float64) float64 {
	if vel >= 0 {
		return vel * hUp
	}
	return vel * hDown
}

// Stats summarises one step for the GridMeta message.
type Stats struct {
	HMin, HMax, HMean          float64
	UMin, UMax, VMin, VMax     float64
	Mass, EnergyK, EnergyP     float64
	Courant                    float64
	Inflow, Outflow            float64
	RainRate, EvaporationRate  float64
	ChecksumOfHeights          uint32
	BoundaryReflectiveAllSides bool
}

// Stats computes the current summary.
func (s *Sim) Stats() Stats {
	st := Stats{HMin: math.Inf(1), HMax: math.Inf(-1), UMin: math.Inf(1),
		UMax: math.Inf(-1), VMin: math.Inf(1), VMax: math.Inf(-1),
		BoundaryReflectiveAllSides: true, RainRate: s.rain}
	var sum, maxSpeed float64
	var csum uint32
	for k, h := range s.H {
		if h < st.HMin {
			st.HMin = h
		}
		if h > st.HMax {
			st.HMax = h
		}
		sum += h
		u, v := s.U[k], s.V[k]
		if u < st.UMin {
			st.UMin = u
		}
		if u > st.UMax {
			st.UMax = u
		}
		if v < st.VMin {
			st.VMin = v
		}
		if v > st.VMax {
			st.VMax = v
		}
		sp := math.Hypot(u, v)
		if sp > maxSpeed {
			maxSpeed = sp
		}
		st.EnergyK += 0.5 * h * (u*u + v*v)
		st.EnergyP += 0.5 * s.cfg.Gravity * h * h
		csum = csum*31 + uint32(math.Float32bits(float32(h)))
	}
	n := float64(len(s.H))
	st.Mass = sum * s.cfg.Dx * s.cfg.Dy
	st.HMean = sum / n
	st.Courant = (maxSpeed + math.Sqrt(s.cfg.Gravity*math.Max(st.HMax, 0))) *
		s.cfg.Dt / math.Min(s.cfg.Dx, s.cfg.Dy)
	st.ChecksumOfHeights = csum
	return st
}

// HeightField returns the water depths as float32, the payload of a
// SimpleData message.
func (s *Sim) HeightField() []float32 {
	out := make([]float32, len(s.H))
	for k, h := range s.H {
		out[k] = float32(h)
	}
	return out
}

// Meta fills a GridMeta message for the current step.
func (s *Sim) Meta(frameID int32) GridMeta {
	st := s.Stats()
	return GridMeta{
		Nx: int32(s.cfg.Nx), Ny: int32(s.cfg.Ny),
		StepIndex: int32(s.Step),
		X0:        0, Y0: 0,
		Dx: float32(s.cfg.Dx), Dy: float32(s.cfg.Dy),
		T: float32(s.T), Dt: float32(s.cfg.Dt),
		Gravity: float32(s.cfg.Gravity), Viscosity: float32(1 - s.cfg.Damping),
		HMin: float32(st.HMin), HMax: float32(st.HMax), HMean: float32(st.HMean),
		UMin: float32(st.UMin), UMax: float32(st.UMax),
		VMin: float32(st.VMin), VMax: float32(st.VMax),
		EnergyK: float32(st.EnergyK), EnergyP: float32(st.EnergyP),
		Mass: float32(st.Mass), Courant: float32(st.Courant),
		RainRate: float32(s.rain),
		SeedLo:   uint32(s.cfg.Seed), SeedHi: uint32(uint64(s.cfg.Seed) >> 32),
		BoundaryN: 1, BoundaryS: 1, BoundaryE: 1, BoundaryW: 1,
		FrameID: frameID, Checksum: st.ChecksumOfHeights,
	}
}

// Downsample decimates a field by the given factor in each dimension —
// the presend component's data reduction for remote visualization.
func Downsample(field []float32, nx, ny, factor int) ([]float32, int, int, error) {
	if factor < 1 {
		return nil, 0, 0, fmt.Errorf("hydro: downsample factor %d", factor)
	}
	if nx*ny != len(field) {
		return nil, 0, 0, fmt.Errorf("hydro: field of %d values is not %dx%d", len(field), nx, ny)
	}
	onx := (nx + factor - 1) / factor
	ony := (ny + factor - 1) / factor
	out := make([]float32, onx*ony)
	for oj := 0; oj < ony; oj++ {
		for oi := 0; oi < onx; oi++ {
			// Average the source block.
			var sum float32
			var cnt int
			for j := oj * factor; j < min((oj+1)*factor, ny); j++ {
				for i := oi * factor; i < min((oi+1)*factor, nx); i++ {
					sum += field[j*nx+i]
					cnt++
				}
			}
			out[oj*onx+oi] = sum / float32(cnt)
		}
	}
	return out, onx, ony, nil
}
