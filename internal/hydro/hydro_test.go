package hydro

import (
	"math"
	"testing"

	"github.com/open-metadata/xmit/internal/core"
	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/platform"
)

// TestFormatSizesMatchPaper pins the four application formats to the
// structure sizes plotted in the paper's Figure 6: 12, 20, 44, 152 bytes
// on the sparc32 testbed.
func TestFormatSizesMatchPaper(t *testing.T) {
	tk := core.NewToolkit()
	ctx := pbio.NewContext(pbio.WithPlatform(platform.Sparc32))
	fm, err := LoadFormats(tk, "", ctx)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		size int
		got  int
	}{
		{"SimpleData", 12, fm.SimpleData.Size},
		{"JoinRequest", 20, fm.JoinRequest.Size},
		{"ControlMsg", 44, fm.ControlMsg.Size},
		{"GridMeta", 152, fm.GridMeta.Size},
	}
	for _, c := range cases {
		if c.got != c.size {
			t.Errorf("%s structure size = %d, want %d (paper Figure 6)", c.name, c.got, c.size)
		}
	}
	// GridMeta is the primitive-heavy worst case: one leaf field per 4
	// bytes.
	if n := fm.GridMeta.FieldCount(); n != 38 {
		t.Errorf("GridMeta has %d leaf fields, want 38", n)
	}
}

// TestFormatsRoundTrip pushes each message type through a full
// encode/decode cycle using XMIT-generated metadata.
func TestFormatsRoundTrip(t *testing.T) {
	tk := core.NewToolkit()
	ctx := pbio.NewContext(pbio.WithPlatform(platform.Sparc32))
	fm, err := LoadFormats(tk, "", ctx)
	if err != nil {
		t.Fatal(err)
	}

	jr := JoinRequest{Name: "vis5d-component-0", Server: 2, IPAddr: 0x0a000001, Pid: 4242, DsAddr: 0xdead}
	bjr, err := ctx.Bind(fm.JoinRequest, &jr)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := bjr.Encode(&jr)
	if err != nil {
		t.Fatal(err)
	}
	var jr2 JoinRequest
	if _, err := ctx.Decode(msg, &jr2); err != nil {
		t.Fatal(err)
	}
	if jr2 != jr {
		t.Errorf("JoinRequest: %+v != %+v", jr2, jr)
	}

	sd := SimpleData{Timestep: 7, Data: []float32{1, 2, 3, 4, 5}}
	bsd, _ := ctx.Bind(fm.SimpleData, &sd)
	msg, err = bsd.Encode(&sd)
	if err != nil {
		t.Fatal(err)
	}
	var sd2 SimpleData
	if _, err := ctx.Decode(msg, &sd2); err != nil {
		t.Fatal(err)
	}
	if sd2.Size != 5 || sd2.Data[4] != 5 {
		t.Errorf("SimpleData: %+v", sd2)
	}

	cm := ControlMsg{Command: CmdSetView, PanX: 1, PanY: -1, Zoom: 2, Flags: 0x80000001}
	bcm, _ := ctx.Bind(fm.ControlMsg, &cm)
	msg, _ = bcm.Encode(&cm)
	var cm2 ControlMsg
	if _, err := ctx.Decode(msg, &cm2); err != nil {
		t.Fatal(err)
	}
	if cm2 != cm {
		t.Errorf("ControlMsg: %+v != %+v", cm2, cm)
	}

	gm := GridMeta{Nx: 64, Ny: 32, HMax: 2.5, Checksum: 0xffffffff, BoundaryW: 1}
	bgm, _ := ctx.Bind(fm.GridMeta, &gm)
	msg, _ = bgm.Encode(&gm)
	var gm2 GridMeta
	if _, err := ctx.Decode(msg, &gm2); err != nil {
		t.Fatal(err)
	}
	if gm2 != gm {
		t.Errorf("GridMeta: %+v != %+v", gm2, gm)
	}
}

func TestSimDefaultsAndErrors(t *testing.T) {
	if _, err := NewSim(Config{Nx: 2, Ny: 2}); err == nil {
		t.Error("tiny grid should be rejected")
	}
	s, err := NewSim(Config{Nx: 16, Ny: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.Dt <= 0 || cfg.Gravity != 9.81 || cfg.Dx != 1 {
		t.Errorf("defaults: %+v", cfg)
	}
}

// TestSimDeterminism: same seed, same simulation.
func TestSimDeterminism(t *testing.T) {
	run := func() uint32 {
		s, err := NewSim(Config{Nx: 24, Ny: 20, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			s.StepOnce()
		}
		return s.Stats().ChecksumOfHeights
	}
	if run() != run() {
		t.Error("simulation is not deterministic for a fixed seed")
	}
	s1, _ := NewSim(Config{Nx: 24, Ny: 20, Seed: 42})
	s2, _ := NewSim(Config{Nx: 24, Ny: 20, Seed: 43})
	if s1.Stats().ChecksumOfHeights == s2.Stats().ChecksumOfHeights {
		t.Error("different seeds should produce different terrain")
	}
}

// TestSimMassConservation: with reflective boundaries and no rain, total
// water mass is conserved up to floating-point drift.
func TestSimMassConservation(t *testing.T) {
	s, err := NewSim(Config{Nx: 32, Ny: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m0 := s.Stats().Mass
	for i := 0; i < 200; i++ {
		s.StepOnce()
	}
	m1 := s.Stats().Mass
	if rel := math.Abs(m1-m0) / m0; rel > 1e-6 {
		t.Errorf("mass drifted by %.3g (from %g to %g)", rel, m0, m1)
	}
}

// TestSimStability: the scheme must stay finite and the dam-break must
// actually move water (velocities nonzero).
func TestSimStability(t *testing.T) {
	s, err := NewSim(Config{Nx: 32, Ny: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		s.StepOnce()
	}
	st := s.Stats()
	if math.IsNaN(st.HMax) || math.IsInf(st.HMax, 0) || st.HMax > 100 {
		t.Fatalf("solution blew up: %+v", st)
	}
	if st.UMax == 0 && st.VMax == 0 {
		t.Error("no flow developed")
	}
	if st.HMin < 0 {
		t.Error("negative water depth")
	}
	if st.Courant <= 0 || st.Courant > 1.5 {
		t.Errorf("courant number %.3f out of the stable range", st.Courant)
	}
}

func TestSimRain(t *testing.T) {
	s, err := NewSim(Config{Nx: 16, Ny: 16, Seed: 1, Rain: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	m0 := s.Stats().Mass
	for i := 0; i < 50; i++ {
		s.StepOnce()
	}
	if s.Stats().Mass <= m0 {
		t.Error("rain should add mass")
	}
}

func TestDownsample(t *testing.T) {
	field := []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
	}
	out, onx, ony, err := Downsample(field, 4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if onx != 2 || ony != 2 {
		t.Fatalf("downsampled dims %dx%d", onx, ony)
	}
	// Block (0,0) = mean(1,2,5,6) = 3.5.
	if out[0] != 3.5 {
		t.Errorf("out[0] = %v", out[0])
	}
	// Bottom row blocks average the remaining single row.
	if out[2] != 9.5 {
		t.Errorf("out[2] = %v", out[2])
	}
	if _, _, _, err := Downsample(field, 5, 3, 2); err == nil {
		t.Error("bad dims should fail")
	}
	if _, _, _, err := Downsample(field, 4, 3, 0); err == nil {
		t.Error("zero factor should fail")
	}
	same, _, _, err := Downsample(field, 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range field {
		if same[i] != field[i] {
			t.Fatal("factor 1 should be identity")
		}
	}
}

// TestMetaConsistency: the GridMeta emitted by the solver reflects its
// statistics.
func TestMetaConsistency(t *testing.T) {
	s, err := NewSim(Config{Nx: 16, Ny: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.StepOnce()
	m := s.Meta(3)
	st := s.Stats()
	if m.FrameID != 3 || m.StepIndex != 1 {
		t.Errorf("meta ids: %+v", m)
	}
	if m.HMax != float32(st.HMax) || m.Checksum != st.ChecksumOfHeights {
		t.Error("meta stats disagree with Stats()")
	}
	if m.Nx != 16 || m.Ny != 16 {
		t.Error("meta grid dims wrong")
	}
}

// TestPipelineEndToEnd runs the full Figure 5 dataflow in-process.
func TestPipelineEndToEnd(t *testing.T) {
	rep, err := RunPipeline(PipelineConfig{
		Grid:  Config{Nx: 24, Ny: 24, Seed: 11},
		Steps: 6,
		Sinks: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StepsRun != 6 || rep.FramesEmitted != 6 {
		t.Errorf("steps/frames = %d/%d", rep.StepsRun, rep.FramesEmitted)
	}
	for i, s := range rep.Sinks {
		if s.Frames != 6 {
			t.Errorf("sink %d saw %d frames, want 6", i, s.Frames)
		}
		if s.LastStep != 6 {
			t.Errorf("sink %d last step %d", i, s.LastStep)
		}
		if s.MinH < 0 || s.MaxH <= s.MinH {
			t.Errorf("sink %d stats: min %g max %g", i, s.MinH, s.MaxH)
		}
		if s.FeedbackOut != 1 {
			t.Errorf("sink %d sent %d feedback messages", i, s.FeedbackOut)
		}
	}
	// Joins: source->presend, presend->flow, flow->coupler, sinks->coupler.
	if rep.Joins != 3+2 {
		t.Errorf("joins = %d, want 5", rep.Joins)
	}
	if rep.ControlReceived != 2 {
		t.Errorf("solver saw %d control messages, want 2", rep.ControlReceived)
	}
	if rep.FinalMeta.StepIndex != 6 || rep.FinalMeta.Mass <= 0 {
		t.Errorf("final meta: %+v", rep.FinalMeta)
	}
}

// TestPipelineDownsample: presend reduces the grid the solver runs on.
func TestPipelineDownsample(t *testing.T) {
	rep, err := RunPipeline(PipelineConfig{
		Grid:       Config{Nx: 32, Ny: 32, Seed: 2},
		Steps:      3,
		Downsample: 2,
		Sinks:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalMeta.Nx != 16 || rep.FinalMeta.Ny != 16 {
		t.Errorf("solver grid = %dx%d, want 16x16 after presend decimation",
			rep.FinalMeta.Nx, rep.FinalMeta.Ny)
	}
	if rep.Sinks[0].Frames != 3 {
		t.Errorf("sink frames = %d", rep.Sinks[0].Frames)
	}
}

// TestPipelineEmitEvery: frames are decimated in time.
func TestPipelineEmitEvery(t *testing.T) {
	rep, err := RunPipeline(PipelineConfig{
		Grid:      Config{Nx: 16, Ny: 16, Seed: 2},
		Steps:     10,
		EmitEvery: 5,
		Sinks:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesEmitted != 2 || rep.Sinks[0].Frames != 2 {
		t.Errorf("frames = %d/%d, want 2", rep.FramesEmitted, rep.Sinks[0].Frames)
	}
}

// TestPipelineOverTCP runs the same dataflow with every inter-component
// link carried over loopback TCP — the distributed deployment shape.
func TestPipelineOverTCP(t *testing.T) {
	rep, err := RunPipeline(PipelineConfig{
		Grid:   Config{Nx: 16, Ny: 16, Seed: 4},
		Steps:  4,
		Sinks:  2,
		UseTCP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesEmitted != 4 {
		t.Errorf("frames = %d", rep.FramesEmitted)
	}
	for i, s := range rep.Sinks {
		if s.Frames != 4 {
			t.Errorf("sink %d frames = %d", i, s.Frames)
		}
	}
	if rep.Joins != 5 {
		t.Errorf("joins = %d, want 5", rep.Joins)
	}
}

// TestPipelineLargerScale soaks the full dataflow at a bigger grid and
// longer run, with decimation in space and time plus rainfall — closer to
// the demo's production shape.
func TestPipelineLargerScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large pipeline soak skipped in -short mode")
	}
	rep, err := RunPipeline(PipelineConfig{
		Grid:       Config{Nx: 96, Ny: 96, Seed: 1849, Rain: 0.0001},
		Steps:      40,
		EmitEvery:  4,
		Downsample: 2,
		Sinks:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesEmitted != 10 {
		t.Errorf("frames = %d", rep.FramesEmitted)
	}
	if rep.FinalMeta.Nx != 48 || rep.FinalMeta.Ny != 48 {
		t.Errorf("grid = %dx%d", rep.FinalMeta.Nx, rep.FinalMeta.Ny)
	}
	for i, s := range rep.Sinks {
		if s.Frames != 10 || s.LastStep != 40 {
			t.Errorf("sink %d: %+v", i, s)
		}
	}
	// Rain fell the whole run; mass must exceed the dry baseline run.
	if rep.FinalMeta.Mass <= 0 || rep.FinalMeta.Courant > 1.5 {
		t.Errorf("final meta: %+v", rep.FinalMeta)
	}
}

// TestPipelineMixedPlatforms gives every component a different simulated
// ABI: each hop crosses byte order and word size, so every message is
// converted by the receiver. Values must still arrive intact.
func TestPipelineMixedPlatforms(t *testing.T) {
	rep, err := RunPipeline(PipelineConfig{
		Grid:           Config{Nx: 20, Ny: 20, Seed: 77},
		Steps:          5,
		Sinks:          3, // 7 components > 5 platforms: the cycle wraps
		MixedPlatforms: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesEmitted != 5 {
		t.Errorf("frames = %d", rep.FramesEmitted)
	}
	for i, s := range rep.Sinks {
		if s.Frames != 5 || s.LastStep != 5 {
			t.Errorf("sink %d: %+v", i, s)
		}
		if s.MaxH <= s.MinH || s.MinH < 0 {
			t.Errorf("sink %d water range [%g, %g]", i, s.MinH, s.MaxH)
		}
	}
	if rep.ControlReceived != 3 {
		t.Errorf("control = %d, want 3", rep.ControlReceived)
	}
}
