package hydro

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"github.com/open-metadata/xmit/internal/core"
	"github.com/open-metadata/xmit/internal/iofile"
	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/platform"
	"github.com/open-metadata/xmit/internal/transport"
)

// PipelineConfig parameterises a run of the component pipeline of the
// paper's Figure 5: data source -> presend -> flow2d -> coupler -> N
// Vis5D-style sinks, with control feedback flowing back through the
// coupler.
type PipelineConfig struct {
	// Grid configures the simulation.
	Grid Config
	// Steps is the number of solver steps to run (default 10).
	Steps int
	// EmitEvery sends a frame downstream every k steps (default 1).
	EmitEvery int
	// Downsample is the presend decimation factor (default 1 = off).
	Downsample int
	// Sinks is the number of visualization clients (default 2, as in the
	// paper's figure).
	Sinks int
	// SchemaURL, when non-empty, is where components discover the
	// message formats; otherwise the embedded document is used.
	SchemaURL string
	// ArchivePath, when non-empty, makes the coupler archive every frame
	// it broadcasts into a self-describing PBIO data file (readable with
	// cmd/pbfdump or internal/iofile on any platform).
	ArchivePath string
	// UseTCP wires the components over loopback TCP connections instead
	// of in-process pipes, exercising the same paths a distributed
	// deployment would.
	UseTCP bool
	// MixedPlatforms gives every component a different simulated ABI
	// (cycling through all of them), so each hop crosses byte orders and
	// word sizes — the heterogeneous machine room of the paper's
	// introduction.
	MixedPlatforms bool
	// Platform is the simulated wire platform for every component
	// (default sparc32, the paper's testbed).
	Platform *platform.Platform
}

func (c *PipelineConfig) applyDefaults() {
	if c.Steps == 0 {
		c.Steps = 10
	}
	if c.EmitEvery == 0 {
		c.EmitEvery = 1
	}
	if c.Downsample == 0 {
		c.Downsample = 1
	}
	if c.Sinks == 0 {
		c.Sinks = 2
	}
	if c.Platform == nil {
		c.Platform = platform.Sparc32
	}
	if c.Grid.Nx == 0 {
		c.Grid.Nx = 32
	}
	if c.Grid.Ny == 0 {
		c.Grid.Ny = 32
	}
}

// SinkReport summarises what one visualization sink observed.
type SinkReport struct {
	Name        string
	Frames      int
	LastStep    int32
	MinH, MaxH  float32
	FeedbackOut int
}

// RunReport summarises a pipeline run.
type RunReport struct {
	StepsRun        int
	FramesEmitted   int
	Sinks           []SinkReport
	ControlReceived int // control messages the solver saw
	Joins           int // JoinRequests the coupler saw
	FinalMeta       GridMeta
}

// component bundles the per-process state each pipeline stage owns: its own
// XMIT toolkit and PBIO context (components are separate programs in the
// paper; nothing is shared but the schema document and the wire).
type component struct {
	name string
	tk   *core.Toolkit
	ctx  *pbio.Context
	fmts *Formats
}

func newComponent(name string, cfg *PipelineConfig, idx int) (*component, error) {
	p := cfg.Platform
	if cfg.MixedPlatforms {
		all := platform.All()
		p = all[idx%len(all)]
	}
	c := &component{
		name: name,
		tk:   core.NewToolkit(),
		ctx:  pbio.NewContext(pbio.WithPlatform(p)),
	}
	fmts, err := LoadFormats(c.tk, cfg.SchemaURL, c.ctx)
	if err != nil {
		return nil, fmt.Errorf("hydro: component %s: %w", name, err)
	}
	c.fmts = fmts
	return c, nil
}

func (c *component) join(conn *transport.Conn, pid uint32) error {
	b, err := c.ctx.Bind(c.fmts.JoinRequest, &JoinRequest{})
	if err != nil {
		return err
	}
	return conn.Send(b, &JoinRequest{Name: c.name, Server: 1, IPAddr: 0x7f000001, Pid: pid})
}

// RunPipeline wires the components with in-process transports and runs the
// whole application to completion.
func RunPipeline(cfg PipelineConfig) (*RunReport, error) {
	cfg.applyDefaults()

	source, err := newComponent("data-source", &cfg, 0)
	if err != nil {
		return nil, err
	}
	presend, err := newComponent("presend", &cfg, 1)
	if err != nil {
		return nil, err
	}
	flow, err := newComponent("flow2d", &cfg, 2)
	if err != nil {
		return nil, err
	}
	coupler, err := newComponent("coupler", &cfg, 3)
	if err != nil {
		return nil, err
	}
	sinks := make([]*component, cfg.Sinks)
	for i := range sinks {
		if sinks[i], err = newComponent(fmt.Sprintf("vis5d-%d", i), &cfg, 4+i); err != nil {
			return nil, err
		}
	}

	// Wire the dataflow of Figure 5.
	srcOut, preIn, err := connect(source.ctx, presend.ctx, cfg.UseTCP)
	if err != nil {
		return nil, err
	}
	preOut, flowIn, err := connect(presend.ctx, flow.ctx, cfg.UseTCP)
	if err != nil {
		return nil, err
	}
	flowOut, coupIn, err := connect(flow.ctx, coupler.ctx, cfg.UseTCP)
	if err != nil {
		return nil, err
	}
	sinkConns := make([]*transport.Conn, cfg.Sinks) // coupler side
	sinkEnds := make([]*transport.Conn, cfg.Sinks)  // sink side
	for i := range sinkConns {
		if sinkConns[i], sinkEnds[i], err = connect(coupler.ctx, sinks[i].ctx, cfg.UseTCP); err != nil {
			return nil, err
		}
	}

	report := &RunReport{Sinks: make([]SinkReport, cfg.Sinks)}
	var joins, controlSeen atomic.Int64

	errc := make(chan error, 4+cfg.Sinks)
	var wg sync.WaitGroup
	run := func(name string, fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fn(); err != nil && !isClosed(err) {
				errc <- fmt.Errorf("%s: %w", name, err)
			}
		}()
	}

	run("data-source", func() error {
		defer srcOut.Close()
		return runDataSource(source, srcOut, cfg)
	})
	run("presend", func() error {
		defer preOut.Close()
		return runPreSend(presend, preIn, preOut, cfg, &joins)
	})
	run("flow2d", func() error {
		defer flowOut.Close()
		return runFlow2D(flow, flowIn, flowOut, cfg, report, &controlSeen, &joins)
	})
	var archive *iofile.Writer
	if cfg.ArchivePath != "" {
		if archive, err = iofile.Create(cfg.ArchivePath); err != nil {
			return nil, err
		}
	}
	run("coupler", func() error {
		for _, sc := range sinkConns {
			defer sc.Close()
		}
		if archive != nil {
			defer archive.Close()
		}
		return runCoupler(coupler, coupIn, sinkConns, flowOut, &joins, archive)
	})
	for i := range sinks {
		i := i
		run(sinks[i].name, func() error {
			defer sinkEnds[i].Close()
			return runSink(sinks[i], sinkEnds[i], &report.Sinks[i])
		})
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		return nil, err
	}
	report.Joins = int(joins.Load())
	report.ControlReceived = int(controlSeen.Load())
	return report, nil
}

func isClosed(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return true
	}
	// A TCP peer that exits after close surfaces as a reset on Linux.
	var opErr *net.OpError
	return errors.As(err, &opErr)
}

// connect joins two components' contexts with either an in-process pipe or
// a loopback TCP connection.  The first return value is the a-side
// connection, the second the b-side.
func connect(a, b *pbio.Context, useTCP bool) (*transport.Conn, *transport.Conn, error) {
	if !useTCP {
		ca, cb := transport.Pipe(a, b)
		return ca, cb, nil
	}
	ln, err := transport.Listen("127.0.0.1:0", b)
	if err != nil {
		return nil, nil, err
	}
	defer ln.Close()
	type accepted struct {
		conn *transport.Conn
		err  error
	}
	acc := make(chan accepted, 1)
	go func() {
		conn, err := ln.Accept()
		acc <- accepted{conn, err}
	}()
	ca, err := transport.Dial(ln.Addr(), a)
	if err != nil {
		return nil, nil, err
	}
	got := <-acc
	if got.err != nil {
		ca.Close()
		return nil, nil, got.err
	}
	return ca, got.conn, nil
}

// runDataSource "reads the data file": it builds the initial simulation
// state and ships grid metadata, terrain, and initial water downstream.
func runDataSource(c *component, out *transport.Conn, cfg PipelineConfig) error {
	if err := c.join(out, 100); err != nil {
		return err
	}
	sim, err := NewSim(cfg.Grid)
	if err != nil {
		return err
	}
	gm := sim.Meta(0)
	gm.Nsteps = int32(cfg.Steps)
	bGM, err := c.ctx.Bind(c.fmts.GridMeta, &GridMeta{})
	if err != nil {
		return err
	}
	if err := out.Send(bGM, &gm); err != nil {
		return err
	}
	bSD, err := c.ctx.Bind(c.fmts.SimpleData, &SimpleData{})
	if err != nil {
		return err
	}
	terrain := make([]float32, len(sim.B))
	for k, b := range sim.B {
		terrain[k] = float32(b)
	}
	// Timestep -1 tags the terrain field, -2 the initial water.
	if err := out.Send(bSD, &SimpleData{Timestep: -1, Data: terrain}); err != nil {
		return err
	}
	return out.Send(bSD, &SimpleData{Timestep: -2, Data: sim.HeightField()})
}

// runPreSend forwards the initial dataset, decimating the fields so remote
// components receive a reduced grid.
func runPreSend(c *component, in, out *transport.Conn, cfg PipelineConfig, joins *atomic.Int64) error {
	if err := c.join(out, 101); err != nil {
		return err
	}
	bGM, err := c.ctx.Bind(c.fmts.GridMeta, &GridMeta{})
	if err != nil {
		return err
	}
	bSD, err := c.ctx.Bind(c.fmts.SimpleData, &SimpleData{})
	if err != nil {
		return err
	}
	var nx, ny int
	for {
		f, body, err := in.RecvMessage()
		if err != nil {
			if isClosed(err) {
				return nil
			}
			return err
		}
		switch f.Name {
		case "JoinRequest":
			joins.Add(1)
		case "GridMeta":
			var gm GridMeta
			if err := c.ctx.DecodeBody(f, body, &gm); err != nil {
				return err
			}
			nx, ny = int(gm.Nx), int(gm.Ny)
			if cfg.Downsample > 1 {
				gm.Nx = int32((nx + cfg.Downsample - 1) / cfg.Downsample)
				gm.Ny = int32((ny + cfg.Downsample - 1) / cfg.Downsample)
				gm.Dx *= float32(cfg.Downsample)
				gm.Dy *= float32(cfg.Downsample)
			}
			if err := out.Send(bGM, &gm); err != nil {
				return err
			}
		case "SimpleData":
			var sd SimpleData
			if err := c.ctx.DecodeBody(f, body, &sd); err != nil {
				return err
			}
			if cfg.Downsample > 1 && nx > 0 {
				reduced, _, _, err := Downsample(sd.Data, nx, ny, cfg.Downsample)
				if err != nil {
					return err
				}
				sd.Data = reduced
				sd.Size = int32(len(reduced))
			}
			if err := out.Send(bSD, &sd); err != nil {
				return err
			}
		}
	}
}

// runFlow2D reconstructs the simulation from the incoming dataset, steps
// it, and emits per-step frames; a reader goroutine absorbs control
// feedback arriving on the downstream connection.
func runFlow2D(c *component, in, out *transport.Conn, cfg PipelineConfig,
	report *RunReport, controlSeen *atomic.Int64, joins *atomic.Int64) error {
	if err := c.join(out, 102); err != nil {
		return err
	}
	// Gather the initial dataset: GridMeta, terrain, water.
	var gm GridMeta
	var terrain, water []float32
	for gm.Nx == 0 || terrain == nil || water == nil {
		f, body, err := in.RecvMessage()
		if err != nil {
			return fmt.Errorf("awaiting dataset: %w", err)
		}
		switch f.Name {
		case "JoinRequest":
			joins.Add(1)
		case "GridMeta":
			if err := c.ctx.DecodeBody(f, body, &gm); err != nil {
				return err
			}
		case "SimpleData":
			var sd SimpleData
			if err := c.ctx.DecodeBody(f, body, &sd); err != nil {
				return err
			}
			switch sd.Timestep {
			case -1:
				terrain = sd.Data
			case -2:
				water = sd.Data
			}
		}
	}
	grid := cfg.Grid
	grid.Nx, grid.Ny = int(gm.Nx), int(gm.Ny)
	sim, err := NewSim(grid)
	if err != nil {
		return err
	}
	if len(terrain) == len(sim.B) {
		for k := range sim.B {
			sim.B[k] = float64(terrain[k])
			sim.H[k] = float64(water[k])
		}
	}

	// Control feedback arrives asynchronously from the coupler.
	var isoLevel atomic.Int64
	go func() {
		var ctl ControlMsg
		for {
			if _, err := out.Recv(&ctl); err != nil {
				return
			}
			controlSeen.Add(1)
			if ctl.Command == CmdSetIso {
				isoLevel.Add(1)
			}
		}
	}()

	bGM, err := c.ctx.Bind(c.fmts.GridMeta, &GridMeta{})
	if err != nil {
		return err
	}
	bSD, err := c.ctx.Bind(c.fmts.SimpleData, &SimpleData{})
	if err != nil {
		return err
	}
	bCM, err := c.ctx.Bind(c.fmts.ControlMsg, &ControlMsg{})
	if err != nil {
		return err
	}
	frame := int32(0)
	for step := 1; step <= cfg.Steps; step++ {
		sim.StepOnce()
		if step%cfg.EmitEvery != 0 {
			continue
		}
		frame++
		m := sim.Meta(frame)
		m.Nsteps = int32(cfg.Steps)
		m.IsoLevels = int32(isoLevel.Load())
		if err := out.Send(bGM, &m); err != nil {
			return err
		}
		sd := SimpleData{Timestep: int32(step), Data: sim.HeightField()}
		if err := out.Send(bSD, &sd); err != nil {
			return err
		}
		report.FinalMeta = m
	}
	report.StepsRun = cfg.Steps
	report.FramesEmitted = int(frame)
	// Announce end-of-stream downstream.
	return out.Send(bCM, &ControlMsg{Command: CmdShutdown, Timestep: int32(cfg.Steps)})
}

// runCoupler broadcasts solver frames to every sink, funnels sink feedback
// upstream to the solver, and optionally archives the data stream to a
// PBIO file.
func runCoupler(c *component, in *transport.Conn, sinks []*transport.Conn,
	upstream *transport.Conn, joins *atomic.Int64, archive *iofile.Writer) error {
	bCM, err := c.ctx.Bind(c.fmts.ControlMsg, &ControlMsg{})
	if err != nil {
		return err
	}
	// Feedback pumps: one reader per sink connection, dispatching join
	// requests and forwarding control feedback upstream (the incoming
	// connection is bidirectional).
	var fwg sync.WaitGroup
	for _, sc := range sinks {
		sc := sc
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			for {
				f, body, err := sc.RecvMessage()
				if err != nil {
					return
				}
				switch f.Name {
				case "JoinRequest":
					joins.Add(1)
				case "ControlMsg":
					var ctl ControlMsg
					if err := c.ctx.DecodeBody(f, body, &ctl); err != nil {
						return
					}
					if err := in.Send(bCM, &ctl); err != nil {
						return
					}
				}
			}
		}()
	}

	var gm GridMeta
	var sd SimpleData
	var ctl ControlMsg
	bGM, _ := c.ctx.Bind(c.fmts.GridMeta, &GridMeta{})
	bSD, _ := c.ctx.Bind(c.fmts.SimpleData, &SimpleData{})
	done := false
	for !done {
		f, body, err := in.RecvMessage()
		if err != nil {
			if isClosed(err) {
				break
			}
			return err
		}
		switch f.Name {
		case "JoinRequest":
			joins.Add(1)
		case "GridMeta":
			if err := c.ctx.DecodeBody(f, body, &gm); err != nil {
				return err
			}
			for _, sc := range sinks {
				if err := sc.Send(bGM, &gm); err != nil {
					return err
				}
			}
			if archive != nil {
				if err := archive.Write(bGM, &gm); err != nil {
					return err
				}
			}
		case "SimpleData":
			if err := c.ctx.DecodeBody(f, body, &sd); err != nil {
				return err
			}
			for _, sc := range sinks {
				if err := sc.Send(bSD, &sd); err != nil {
					return err
				}
			}
			if archive != nil {
				if err := archive.Write(bSD, &sd); err != nil {
					return err
				}
			}
		case "ControlMsg":
			if err := c.ctx.DecodeBody(f, body, &ctl); err != nil {
				return err
			}
			for _, sc := range sinks {
				if err := sc.Send(bCM, &ctl); err != nil {
					return err
				}
			}
			if ctl.Command == CmdShutdown {
				done = true
			}
		}
	}
	fwg.Wait()
	return nil
}

// runSink plays the Vis5D GUI role: consume frames, track display
// statistics, and send viewpoint feedback after the first frame.
func runSink(c *component, conn *transport.Conn, rep *SinkReport) error {
	rep.Name = c.name
	rep.MinH = float32(1e30)
	rep.MaxH = float32(-1e30)
	if err := c.join(conn, 200); err != nil {
		return err
	}
	bCM, err := c.ctx.Bind(c.fmts.ControlMsg, &ControlMsg{})
	if err != nil {
		return err
	}
	var gm GridMeta
	for {
		f, body, err := conn.RecvMessage()
		if err != nil {
			if isClosed(err) {
				return nil
			}
			return err
		}
		switch f.Name {
		case "GridMeta":
			if err := c.ctx.DecodeBody(f, body, &gm); err != nil {
				return err
			}
		case "SimpleData":
			var sd SimpleData
			if err := c.ctx.DecodeBody(f, body, &sd); err != nil {
				return err
			}
			rep.Frames++
			rep.LastStep = sd.Timestep
			for _, h := range sd.Data {
				if h < rep.MinH {
					rep.MinH = h
				}
				if h > rep.MaxH {
					rep.MaxH = h
				}
			}
			if rep.Frames == 1 {
				fb := ControlMsg{Command: CmdSetIso, IsoLevel: (rep.MinH + rep.MaxH) / 2}
				if err := conn.Send(bCM, &fb); err != nil {
					return err
				}
				rep.FeedbackOut++
			}
		case "ControlMsg":
			var ctl ControlMsg
			if err := c.ctx.DecodeBody(f, body, &ctl); err != nil {
				return err
			}
			if ctl.Command == CmdShutdown {
				return nil
			}
		}
	}
}
