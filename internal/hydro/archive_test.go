package hydro

import (
	"io"
	"path/filepath"
	"testing"

	"github.com/open-metadata/xmit/internal/iofile"
	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/platform"
)

// TestPipelineArchive runs the pipeline with archiving and replays the
// resulting PBIO file with an empty context: the file must be fully
// self-describing and its contents consistent with the run report.
func TestPipelineArchive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "frames.pbf")
	rep, err := RunPipeline(PipelineConfig{
		Grid:        Config{Nx: 16, Ny: 16, Seed: 8},
		Steps:       5,
		Sinks:       1,
		ArchivePath: path,
	})
	if err != nil {
		t.Fatal(err)
	}

	r, err := iofile.Open(path, pbio.NewContext(pbio.WithPlatform(platform.X8664)))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var metas, frames int
	var lastStep int32
	for {
		f, body, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch f.Name {
		case "GridMeta":
			metas++
			var gm GridMeta
			if err := r.Context().DecodeBody(f, body, &gm); err != nil {
				t.Fatal(err)
			}
			if gm.Nx != 16 || gm.Ny != 16 {
				t.Errorf("archived grid %dx%d", gm.Nx, gm.Ny)
			}
		case "SimpleData":
			frames++
			var sd SimpleData
			if err := r.Context().DecodeBody(f, body, &sd); err != nil {
				t.Fatal(err)
			}
			if int(sd.Size) != 16*16 {
				t.Errorf("archived frame has %d values", sd.Size)
			}
			lastStep = sd.Timestep
		default:
			t.Errorf("unexpected archived format %q", f.Name)
		}
	}
	if metas != rep.FramesEmitted || frames != rep.FramesEmitted {
		t.Errorf("archived %d metas / %d frames, want %d each", metas, frames, rep.FramesEmitted)
	}
	if lastStep != int32(rep.StepsRun) {
		t.Errorf("last archived step = %d, want %d", lastStep, rep.StepsRun)
	}
}
