// Package cdr implements a CORBA Common Data Representation (CDR) style
// codec, the wire discipline used by IIOP — one of the paper's comparison
// baselines.
//
// CDR characteristics reproduced here:
//
//   - Every primitive is aligned to its natural boundary relative to the
//     start of the message body, which costs padding bytes and alignment
//     arithmetic per field.
//   - The sender writes in its native byte order and records it in a flag
//     byte; the receiver swaps if necessary ("reader makes right").
//   - Strings are a 4-byte length including a terminating NUL, then bytes.
//   - Sequences are a 4-byte element count followed by the elements.
//   - Structs are their members in declaration order, no names on the wire
//     (so unlike PBIO, both ends must agree exactly on the format).
//
// Because every member is visited and aligned individually, CDR cannot
// degenerate into block copies the way PBIO's sender-native layout can.
package cdr

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"

	"github.com/open-metadata/xmit/internal/meta"
	"github.com/open-metadata/xmit/internal/refbind"
)

// Codec marshals one (format, Go type) pair in CDR form.
type Codec struct {
	format    *meta.Format
	goType    reflect.Type
	bounds    []refbind.Bound
	bigEndian bool // sender byte order (from the format's platform)
}

// NewCodec compiles a codec.  The sender writes in the byte order of the
// format's platform, as a CORBA implementation on that machine would.
func NewCodec(f *meta.Format, sample any) (*Codec, error) {
	t, err := refbind.StructType(sample)
	if err != nil {
		return nil, err
	}
	bounds, err := refbind.Compile(f, t, true)
	if err != nil {
		return nil, err
	}
	return &Codec{format: f, goType: t, bounds: bounds, bigEndian: f.BigEndian}, nil
}

// Format returns the codec's metadata.
func (c *Codec) Format() *meta.Format { return c.format }

// Encode appends the CDR encoding of v to dst.  The first byte is the byte
// order flag (0 = big endian, 1 = little endian, as in GIOP); the body is
// aligned relative to the byte after the flag... following GIOP practice,
// alignment is computed from the start of the body, which begins at offset
// 4 (the flag plus three reserved padding bytes).
func (c *Codec) Encode(dst []byte, v any) ([]byte, error) {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return nil, fmt.Errorf("cdr: encode: nil pointer")
		}
		rv = rv.Elem()
	}
	if rv.Type() != c.goType {
		return nil, fmt.Errorf("cdr: encode: value type %s does not match bound type %s", rv.Type(), c.goType)
	}
	e := &encoder{buf: dst, base: len(dst) + 4, big: c.bigEndian}
	flag := byte(1)
	if c.bigEndian {
		flag = 0
	}
	e.buf = append(e.buf, flag, 0, 0, 0)
	if err := e.writeStruct(c.bounds, rv); err != nil {
		return nil, err
	}
	return e.buf, nil
}

type encoder struct {
	buf  []byte
	base int // offset of body start within buf; alignment is relative to it
	big  bool
}

func (e *encoder) align(n int) {
	pos := len(e.buf) - e.base
	pad := (n - pos%n) % n
	for i := 0; i < pad; i++ {
		e.buf = append(e.buf, 0)
	}
}

func (e *encoder) put(size int, bits uint64) {
	e.align(size)
	var tmp [8]byte
	if e.big {
		binary.BigEndian.PutUint64(tmp[:], bits<<(8*(8-size)))
		e.buf = append(e.buf, tmp[:size]...)
	} else {
		binary.LittleEndian.PutUint64(tmp[:], bits)
		e.buf = append(e.buf, tmp[:size]...)
	}
}

func (e *encoder) writeStruct(bounds []refbind.Bound, v reflect.Value) error {
	lengthFields := map[string]bool{}
	for i := range bounds {
		if lf := bounds[i].Field.LengthField; lf != "" {
			lengthFields[foldLower(lf)] = true
		}
	}
	for i := range bounds {
		b := &bounds[i]
		fl := b.Field
		if b.GoIndex < 0 || lengthFields[foldLower(fl.Name)] {
			// Length members are authoritative from the slice length
			// (CDR sequences also carry their own count; keeping the
			// member consistent matches the binary encoders).
			n := lengthOf(bounds, fl.Name, v)
			e.put(fl.Size, uint64(n))
			continue
		}
		fv := v.Field(b.GoIndex)
		switch {
		case fl.IsDynamic():
			n := fv.Len()
			e.put(4, uint64(n)) // sequence count
			for k := 0; k < n; k++ {
				if err := e.writeValue(fl, b, fv.Index(k)); err != nil {
					return err
				}
			}
		case fl.IsStaticArray():
			n := fv.Len()
			if n != fl.StaticDim {
				return fmt.Errorf("cdr: field %q: %d elements, want %d", fl.Name, n, fl.StaticDim)
			}
			for k := 0; k < n; k++ {
				if err := e.writeValue(fl, b, fv.Index(k)); err != nil {
					return err
				}
			}
		default:
			if err := e.writeValue(fl, b, fv); err != nil {
				return err
			}
		}
	}
	return nil
}

func lengthOf(bounds []refbind.Bound, name string, v reflect.Value) int {
	for i := range bounds {
		b := &bounds[i]
		if b.GoIndex >= 0 && b.Field.IsDynamic() &&
			equalFold(b.Field.LengthField, name) {
			return v.Field(b.GoIndex).Len()
		}
	}
	return 0
}

func foldLower(s string) string {
	out := []byte(s)
	for i := range out {
		if 'A' <= out[i] && out[i] <= 'Z' {
			out[i] += 'a' - 'A'
		}
	}
	return string(out)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

func (e *encoder) writeValue(fl *meta.Field, b *refbind.Bound, fv reflect.Value) error {
	switch fl.Kind {
	case meta.Struct:
		return e.writeStruct(b.Sub, fv)
	case meta.String:
		s := fv.String()
		e.put(4, uint64(len(s)+1)) // length includes NUL
		e.buf = append(e.buf, s...)
		e.buf = append(e.buf, 0)
		return nil
	case meta.Float:
		if fl.Size == 4 {
			e.put(4, uint64(math.Float32bits(float32(fv.Float()))))
		} else {
			e.put(8, math.Float64bits(fv.Float()))
		}
		return nil
	case meta.Boolean:
		var bit uint64
		if truthy(fv) {
			bit = 1
		}
		e.put(fl.Size, bit)
		return nil
	default:
		switch fv.Kind() {
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			e.put(fl.Size, fv.Uint())
		default:
			e.put(fl.Size, uint64(fv.Int()))
		}
		return nil
	}
}

func truthy(fv reflect.Value) bool {
	switch fv.Kind() {
	case reflect.Bool:
		return fv.Bool()
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return fv.Uint() != 0
	default:
		return fv.Int() != 0
	}
}

// Decode parses a CDR message into out, swapping byte order when the
// sender's flag differs from what was written (reader makes right).
func (c *Codec) Decode(data []byte, out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("cdr: decode target must be a non-nil pointer, got %T", out)
	}
	rv = rv.Elem()
	if rv.Type() != c.goType {
		return fmt.Errorf("cdr: decode: target type %s does not match bound type %s", rv.Type(), c.goType)
	}
	if len(data) < 4 {
		return fmt.Errorf("cdr: message too short (%d bytes)", len(data))
	}
	d := &decoder{buf: data[4:], big: data[0] == 0}
	return d.readStruct(c.bounds, rv)
}

type decoder struct {
	buf []byte
	pos int
	big bool
}

func (d *decoder) align(n int) {
	d.pos += (n - d.pos%n) % n
}

func (d *decoder) get(size int) (uint64, error) {
	d.align(size)
	if d.pos+size > len(d.buf) {
		return 0, fmt.Errorf("cdr: read of %d bytes at %d exceeds body of %d", size, d.pos, len(d.buf))
	}
	var bits uint64
	p := d.buf[d.pos:]
	if d.big {
		for i := 0; i < size; i++ {
			bits = bits<<8 | uint64(p[i])
		}
	} else {
		for i := size - 1; i >= 0; i-- {
			bits = bits<<8 | uint64(p[i])
		}
	}
	d.pos += size
	return bits, nil
}

func (d *decoder) readStruct(bounds []refbind.Bound, v reflect.Value) error {
	for i := range bounds {
		b := &bounds[i]
		fl := b.Field
		if b.GoIndex < 0 {
			if _, err := d.get(fl.Size); err != nil { // discard length member
				return err
			}
			continue
		}
		fv := v.Field(b.GoIndex)
		switch {
		case fl.IsDynamic():
			nBits, err := d.get(4)
			if err != nil {
				return err
			}
			n := int(int32(nBits))
			if n < 0 || n > len(d.buf) {
				return fmt.Errorf("cdr: field %q: implausible element count %d", fl.Name, n)
			}
			fv.Set(reflect.MakeSlice(fv.Type(), n, n))
			for k := 0; k < n; k++ {
				if err := d.readValue(fl, b, fv.Index(k)); err != nil {
					return err
				}
			}
		case fl.IsStaticArray():
			if fv.Kind() == reflect.Slice && fv.Len() != fl.StaticDim {
				fv.Set(reflect.MakeSlice(fv.Type(), fl.StaticDim, fl.StaticDim))
			}
			for k := 0; k < fl.StaticDim; k++ {
				if err := d.readValue(fl, b, fv.Index(k)); err != nil {
					return err
				}
			}
		default:
			if err := d.readValue(fl, b, fv); err != nil {
				return err
			}
		}
	}
	return nil
}

func (d *decoder) readValue(fl *meta.Field, b *refbind.Bound, fv reflect.Value) error {
	switch fl.Kind {
	case meta.Struct:
		return d.readStruct(b.Sub, fv)
	case meta.String:
		nBits, err := d.get(4)
		if err != nil {
			return err
		}
		n := int(int32(nBits))
		if n < 1 || d.pos+n > len(d.buf) {
			return fmt.Errorf("cdr: field %q: bad string length %d", fl.Name, n)
		}
		fv.SetString(string(d.buf[d.pos : d.pos+n-1])) // drop NUL
		d.pos += n
		return nil
	case meta.Float:
		bits, err := d.get(fl.Size)
		if err != nil {
			return err
		}
		if fl.Size == 4 {
			fv.SetFloat(float64(math.Float32frombits(uint32(bits))))
		} else {
			fv.SetFloat(math.Float64frombits(bits))
		}
		return nil
	default:
		bits, err := d.get(fl.Size)
		if err != nil {
			return err
		}
		switch fv.Kind() {
		case reflect.Bool:
			fv.SetBool(bits != 0)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fv.SetUint(bits)
		default:
			// Sign-extend signed kinds.
			if fl.Kind == meta.Integer {
				shift := uint(64 - 8*fl.Size)
				fv.SetInt(int64(bits<<shift) >> shift)
			} else {
				fv.SetInt(int64(bits))
			}
		}
		return nil
	}
}
