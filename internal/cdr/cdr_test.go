package cdr

import (
	"reflect"
	"testing"
	"testing/quick"

	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/platform"
)

type msg struct {
	Tag  byte
	Id   int32
	Wide int64
	F    float32
	D    float64
	S    string
	N    int32
	V    []float64
	G    [3]int16
	B    bool
	P    inner
	K    int32
	Ps   []inner
}

type inner struct {
	X float64
	L string
}

func newCodec(t *testing.T, p *platform.Platform) *Codec {
	t.Helper()
	ctx := pbio.NewContext(pbio.WithPlatform(p))
	if _, err := ctx.RegisterFields("inner", []pbio.IOField{
		{Name: "x", Type: "double"},
		{Name: "l", Type: "string"},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterFields("msg", []pbio.IOField{
		{Name: "tag", Type: "char"},
		{Name: "id", Type: "integer"},
		{Name: "wide", Type: "integer(8)"},
		{Name: "f", Type: "float"},
		{Name: "d", Type: "double"},
		{Name: "s", Type: "string"},
		{Name: "n", Type: "integer"},
		{Name: "v", Type: "double[n]"},
		{Name: "g", Type: "integer(2)[3]"},
		{Name: "b", Type: "boolean"},
		{Name: "p", Type: "inner"},
		{Name: "k", Type: "integer"},
		{Name: "ps", Type: "inner[k]"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCodec(f, &msg{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sample() msg {
	return msg{
		Tag: 7, Id: -32000, Wide: -1234567890123, F: 1.5, D: -2.25,
		S: "common data representation", N: 2, V: []float64{3.5, -4.5},
		G: [3]int16{-1, 0, 32767}, B: true,
		P: inner{X: 0.125, L: "origin"}, K: 2,
		Ps: []inner{{X: 1, L: "a"}, {X: 2, L: ""}},
	}
}

func TestRoundTripBothOrders(t *testing.T) {
	for _, p := range []*platform.Platform{platform.Sparc32, platform.X8664} {
		c := newCodec(t, p)
		in := sample()
		enc, err := c.Encode(nil, &in)
		if err != nil {
			t.Fatal(err)
		}
		wantFlag := byte(1)
		if p.BigEndian() {
			wantFlag = 0
		}
		if enc[0] != wantFlag {
			t.Errorf("%s: byte order flag = %d, want %d", p, enc[0], wantFlag)
		}
		var out msg
		if err := c.Decode(enc, &out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("%s:\n in  %+v\n out %+v", p, in, out)
		}
	}
}

// TestReaderMakesRight: a message encoded by a big-endian sender decodes on
// a codec built for a little-endian platform, because the flag byte governs.
func TestReaderMakesRight(t *testing.T) {
	be := newCodec(t, platform.Sparc32)
	le := newCodec(t, platform.X8664)
	in := sample()
	enc, err := be.Encode(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	var out msg
	if err := le.Decode(enc, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("cross-order decode:\n in  %+v\n out %+v", in, out)
	}
}

func TestAlignmentPadding(t *testing.T) {
	// char followed by double must pad 7 bytes (alignment from body start).
	ctx := pbio.NewContext(pbio.WithPlatform(platform.X8664))
	f, err := ctx.RegisterFields("pad", []pbio.IOField{
		{Name: "c", Type: "char"},
		{Name: "d", Type: "double"},
	})
	if err != nil {
		t.Fatal(err)
	}
	type padMsg struct {
		C byte
		D float64
	}
	c, err := NewCodec(f, &padMsg{})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.Encode(nil, &padMsg{C: 1, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 4 (flag+pad) + 1 (char) + 7 (pad) + 8 (double) = 20.
	if len(enc) != 20 {
		t.Errorf("encoded length = %d, want 20 (CDR alignment)", len(enc))
	}
	var out padMsg
	if err := c.Decode(enc, &out); err != nil {
		t.Fatal(err)
	}
	if out.C != 1 || out.D != 2 {
		t.Errorf("decoded %+v", out)
	}
}

func TestLengthMemberSynthesized(t *testing.T) {
	c := newCodec(t, platform.X8664)
	in := sample()
	in.N = 99 // wrong on purpose; slice length must win
	in.K = 0
	enc, err := c.Encode(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	var out msg
	if err := c.Decode(enc, &out); err != nil {
		t.Fatal(err)
	}
	if out.N != 2 || out.K != 2 {
		t.Errorf("length members = %d, %d, want 2, 2", out.N, out.K)
	}
}

func TestErrors(t *testing.T) {
	c := newCodec(t, platform.X8664)
	in := sample()
	enc, _ := c.Encode(nil, &in)

	var out msg
	if err := c.Decode(enc[:2], &out); err == nil {
		t.Error("short message should fail")
	}
	if err := c.Decode(enc[:12], &out); err == nil {
		t.Error("truncated body should fail")
	}
	if err := c.Decode(enc, out); err == nil {
		t.Error("non-pointer target should fail")
	}
	var wrong struct{ X int }
	if err := c.Decode(enc, &wrong); err == nil {
		t.Error("wrong type should fail")
	}
	if _, err := c.Encode(nil, (*msg)(nil)); err == nil {
		t.Error("nil pointer should fail")
	}
	if _, err := c.Encode(nil, &wrong); err == nil {
		t.Error("wrong encode type should fail")
	}

	ctx := pbio.NewContext()
	f, _ := ctx.RegisterFields("M", []pbio.IOField{{Name: "x", Type: "integer"}})
	if _, err := NewCodec(f, 1); err == nil {
		t.Error("non-struct sample should fail")
	}
}

// Property: corrupt bodies never panic.
func TestQuickGarbage(t *testing.T) {
	c := newCodec(t, platform.Sparc32)
	prop := func(body []byte) bool {
		var out msg
		_ = c.Decode(body, &out)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: arbitrary values round-trip.
func TestQuickRoundTrip(t *testing.T) {
	c := newCodec(t, platform.Sparc32)
	prop := func(id int32, s string, v []float64, x float64) bool {
		if len(v) > 30 {
			v = v[:30]
		}
		for i := range v {
			if v[i] != v[i] {
				v[i] = 0
			}
		}
		if x != x {
			x = 0
		}
		in := msg{Id: id, S: s, V: v, P: inner{X: x, L: s}, G: [3]int16{1, 2, 3}}
		in.N = int32(len(v))
		enc, err := c.Encode(nil, &in)
		if err != nil {
			return false
		}
		var out msg
		if err := c.Decode(enc, &out); err != nil {
			return false
		}
		if out.V == nil {
			out.V = []float64{}
		}
		if in.V == nil {
			in.V = []float64{}
		}
		if out.Ps == nil {
			out.Ps = []inner{}
		}
		if in.Ps == nil {
			in.Ps = []inner{}
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
