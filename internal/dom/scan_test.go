package dom

import (
	"strings"
	"testing"
	"testing/quick"
)

// corpus of documents both parsers must handle identically.
var corpus = []string{
	sampleSchema,
	`<a/>`,
	`<a b="1" c="2">text</a>`,
	`<a><b><c>deep</c></b><d/></a>`,
	`<?xml version="1.0" encoding="UTF-8"?><root><!-- comment --><x v="q"/></root>`,
	`<a>one <b>two</b> three</a>`,
	`<ns:a xmlns:ns="urn:x"><ns:b ns:attr="v"/></ns:a>`,
	`<a xmlns="urn:default"><b/><c xmlns="urn:other"><d/></c><e/></a>`,
	`<a v="x&amp;y&lt;&gt;&quot;&apos;">t&amp;t &#65;&#x42;</a>`,
	`<a><![CDATA[raw <stuff> &amp; here]]></a>`,
	`<!DOCTYPE a><a>x</a>`,
	`<a
	   b = "spaced"
	   c="tabs"	>v</a>`,
	`<a><?pi target?><b/></a>`,
	`<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
	   <xsd:complexType name="T"><xsd:element name="x" type="xsd:int"/></xsd:complexType>
	 </xsd:schema>`,
}

// TestDifferentialAgainstStd: the fast scanner and the encoding/xml parser
// produce identical trees on the corpus.
func TestDifferentialAgainstStd(t *testing.T) {
	for i, doc := range corpus {
		fast, errFast := ParseString(doc)
		std, errStd := ParseStdString(doc)
		if (errFast == nil) != (errStd == nil) {
			t.Errorf("doc %d: fast err=%v, std err=%v", i, errFast, errStd)
			continue
		}
		if errFast != nil {
			continue
		}
		if !equalTrees(fast.Root, std.Root) {
			t.Errorf("doc %d: trees differ\nfast: %+v\nstd:  %+v\n%s", i, fast.Root, std.Root, doc)
		}
	}
}

// TestDifferentialMalformed: both parsers must reject clearly malformed
// documents (they may disagree on exotic edge cases, so only unambiguous
// breakage is asserted).
func TestDifferentialMalformed(t *testing.T) {
	bad := []string{
		``,
		`<a>`,
		`<a></b>`,
		`<a/><b/>`,
		`<a b></a>`,
		`<a b=></a>`,
		`<a b=unquoted></a>`,
		`<a b="x</a>`,
		`just text`,
		`<a><!-- unterminated</a>`,
		`<a><![CDATA[open</a>`,
	}
	for _, doc := range bad {
		if _, err := ParseString(doc); err == nil {
			t.Errorf("fast parser accepted %q", doc)
		}
		if _, err := ParseStdString(doc); err == nil {
			t.Errorf("std parser accepted %q", doc)
		}
	}
}

func TestScannerNamespaceScoping(t *testing.T) {
	doc, err := ParseString(`<a xmlns:p="urn:1"><p:b/><c xmlns:p="urn:2"><p:d/></c><p:e/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	b := doc.Root.Children[0]
	d := doc.Root.Children[1].Children[0]
	e := doc.Root.Children[2]
	if b.Space != "urn:1" || d.Space != "urn:2" || e.Space != "urn:1" {
		t.Errorf("spaces = %q %q %q", b.Space, d.Space, e.Space)
	}
}

func TestScannerDefaultNamespaceNotForAttrs(t *testing.T) {
	doc, err := ParseString(`<a xmlns="urn:d" k="v"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Space != "urn:d" {
		t.Errorf("element space = %q", doc.Root.Space)
	}
	if doc.Root.Attrs[0].Space != "" {
		t.Errorf("unprefixed attribute must have no namespace, got %q", doc.Root.Attrs[0].Space)
	}
}

func TestScannerUndeclaredPrefix(t *testing.T) {
	if _, err := ParseString(`<p:a/>`); err == nil {
		t.Error("undeclared element prefix should fail")
	}
	if _, err := ParseString(`<a p:k="v"/>`); err == nil {
		t.Error("undeclared attribute prefix should fail")
	}
	doc, err := ParseString(`<a xml:lang="en"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Attrs[0].Space != "http://www.w3.org/XML/1998/namespace" {
		t.Errorf("xml: prefix not implicitly bound: %q", doc.Root.Attrs[0].Space)
	}
}

func TestScannerEntities(t *testing.T) {
	doc, err := ParseString(`<a>&#x1F600; &amp; &#97;</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Text != "\U0001F600 & a" {
		t.Errorf("text = %q", doc.Root.Text)
	}
	for _, bad := range []string{`<a>&unknown;</a>`, `<a>&#;</a>`, `<a>&#x;</a>`, `<a>&#xZZ;</a>`} {
		d, err := ParseString(bad)
		// Unknown entities pass through as literal text in the fast
		// parser (lenient); they must never panic or corrupt the tree.
		if err == nil && d.Root == nil {
			t.Errorf("%q: nil root", bad)
		}
	}
}

func TestScannerCDATAAndComments(t *testing.T) {
	doc, err := ParseString(`<a>pre<!-- gone --><![CDATA[<raw&>]]>post</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Text != "pre<raw&>post" {
		t.Errorf("text = %q", doc.Root.Text)
	}
}

func TestScannerDoctypeWithSubset(t *testing.T) {
	doc, err := ParseString(`<!DOCTYPE a [ <!ELEMENT a (#PCDATA)> ]><a>x</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Text != "x" {
		t.Errorf("text = %q", doc.Root.Text)
	}
}

func TestScannerDepthLimit(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString("<a>")
	}
	for i := 0; i < 200; i++ {
		sb.WriteString("</a>")
	}
	if _, err := ParseString(sb.String()); err == nil {
		t.Error("deeply nested document should be rejected")
	}
}

func TestScannerMismatchedTags(t *testing.T) {
	if _, err := ParseString(`<a><b></a></b>`); err == nil {
		t.Error("mismatched nesting should fail")
	}
	// Prefixed end tags match on local name.
	if _, err := ParseString(`<p:a xmlns:p="u"><p:b></p:b></p:a>`); err != nil {
		t.Errorf("prefixed tags should match: %v", err)
	}
}

// Property: the scanner never panics on arbitrary bytes, and whenever both
// parsers accept a document they agree on the tree.
func TestQuickScannerGarbage(t *testing.T) {
	prop := func(data []byte) bool {
		fast, errFast := ParseBytes(data)
		if errFast == nil && fast.Root == nil {
			return false
		}
		std, errStd := ParseStdString(string(data))
		if errFast == nil && errStd == nil {
			return equalTrees(fast.Root, std.Root)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}

// Property: serialise(parse(doc)) round-trips through BOTH parsers to the
// same tree for generated documents.
func TestQuickDifferentialGenerated(t *testing.T) {
	prop := func(names []string, values []string) bool {
		root := &Element{Local: "root"}
		cur := root
		for i, n := range names {
			el := &Element{Local: sanitizeName(n), Parent: cur}
			if i < len(values) {
				el.Attrs = append(el.Attrs, Attr{Local: "v", Value: printable(values[i])})
			}
			cur.Children = append(cur.Children, el)
			if i%2 == 0 {
				cur = el
			}
		}
		var sb strings.Builder
		if err := (&Document{Root: root}).WriteXML(&sb); err != nil {
			return false
		}
		fast, err1 := ParseString(sb.String())
		std, err2 := ParseStdString(sb.String())
		if err1 != nil || err2 != nil {
			return false
		}
		return equalTrees(fast.Root, std.Root)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseFast(b *testing.B) {
	data := []byte(sampleSchema)
	for i := 0; i < b.N; i++ {
		if _, err := ParseBytes(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseStd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseStdString(sampleSchema); err != nil {
			b.Fatal(err)
		}
	}
}
