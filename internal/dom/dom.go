// Package dom provides a small Document Object Model over XML documents:
// parsing into an element tree, traversal, and serialisation back to XML.
//
// XMIT's metadata translation is defined over a DOM (the original system
// used the Xerces-C parser): the schema document is parsed once into a
// tree, then subtrees corresponding to type definitions are extracted by
// selective traversal.  This package reproduces that pipeline on top of
// encoding/xml's tokenizer.
package dom

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Attr is one attribute of an element.
type Attr struct {
	// Space is the resolved namespace URI (empty for unqualified
	// attributes), Local the local name.
	Space, Local string
	Value        string
}

// Element is a node of the document tree.
type Element struct {
	// Space is the resolved namespace URI, Local the local tag name.
	Space, Local string
	// Attrs holds the attributes in document order.
	Attrs []Attr
	// Children holds child elements in document order.
	Children []*Element
	// Text is the concatenated character data directly inside this
	// element (excluding descendants), trimmed of surrounding space.
	Text string
	// Parent is the enclosing element, nil at the root.
	Parent *Element
}

// Document is a parsed XML document.
type Document struct {
	Root *Element
}

const maxDepth = 128

// ParseStd reads an XML document into a tree using the standard library's
// encoding/xml tokenizer.  It accepts the same documents as Parse (the fast
// scanner in scan.go) and exists as the reference implementation for
// differential tests and for the parser ablation benchmark.
func ParseStd(r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var root *Element
	var cur *Element
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dom: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			if depth > maxDepth {
				return nil, fmt.Errorf("dom: document nested deeper than %d elements", maxDepth)
			}
			el := &Element{Space: t.Name.Space, Local: t.Name.Local, Parent: cur}
			for _, a := range t.Attr {
				// Drop namespace declarations; prefixes are already resolved.
				if a.Name.Space == "xmlns" || (a.Name.Space == "" && a.Name.Local == "xmlns") {
					continue
				}
				el.Attrs = append(el.Attrs, Attr{Space: a.Name.Space, Local: a.Name.Local, Value: a.Value})
			}
			if cur == nil {
				if root != nil {
					return nil, fmt.Errorf("dom: multiple root elements")
				}
				root = el
			} else {
				cur.Children = append(cur.Children, el)
			}
			cur = el
		case xml.EndElement:
			depth--
			if cur == nil {
				return nil, fmt.Errorf("dom: unbalanced end element %s", t.Name.Local)
			}
			cur.Text = strings.TrimSpace(cur.Text)
			cur = cur.Parent
		case xml.CharData:
			if cur != nil {
				cur.Text += string(t)
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("dom: document has no root element")
	}
	if cur != nil {
		return nil, fmt.Errorf("dom: unterminated element %s", cur.Local)
	}
	return &Document{Root: root}, nil
}

// ParseStdString parses a document held in a string with ParseStd.
func ParseStdString(s string) (*Document, error) {
	return ParseStd(strings.NewReader(s))
}

// Attr returns the value of the named attribute (matching the local name;
// any namespace) and whether it is present.
func (e *Element) Attr(local string) (string, bool) {
	for i := range e.Attrs {
		if e.Attrs[i].Local == local {
			return e.Attrs[i].Value, true
		}
	}
	return "", false
}

// AttrDefault returns the named attribute or a default.
func (e *Element) AttrDefault(local, def string) string {
	if v, ok := e.Attr(local); ok {
		return v
	}
	return def
}

// ChildrenByName returns the direct children with the given local name.
func (e *Element) ChildrenByName(local string) []*Element {
	var out []*Element
	for _, c := range e.Children {
		if c.Local == local {
			out = append(out, c)
		}
	}
	return out
}

// FirstChild returns the first direct child with the given local name, or
// nil.
func (e *Element) FirstChild(local string) *Element {
	for _, c := range e.Children {
		if c.Local == local {
			return c
		}
	}
	return nil
}

// Descendants returns every element in the subtree (including e itself)
// with the given local name, in document order.  This is the selective
// traversal XMIT uses to pull complexType definitions out of a schema.
func (e *Element) Descendants(local string) []*Element {
	var out []*Element
	e.Walk(func(el *Element) bool {
		if el.Local == local {
			out = append(out, el)
		}
		return true
	})
	return out
}

// Walk visits the subtree rooted at e in document order.  Returning false
// from fn prunes the walk below that element.
func (e *Element) Walk(fn func(*Element) bool) {
	if !fn(e) {
		return
	}
	for _, c := range e.Children {
		c.Walk(fn)
	}
}

// Path returns the slash-separated local-name path from the root to e,
// for diagnostics.
func (e *Element) Path() string {
	if e.Parent == nil {
		return e.Local
	}
	return e.Parent.Path() + "/" + e.Local
}

// WriteXML serialises the subtree to the writer as indented XML.  Namespace
// URIs are re-bound to generated prefixes so the output is self-contained.
func (d *Document) WriteXML(w io.Writer) error {
	// Collect namespace URIs used in the tree.
	uris := map[string]string{}
	d.Root.Walk(func(e *Element) bool {
		if e.Space != "" {
			uris[e.Space] = ""
		}
		for _, a := range e.Attrs {
			if a.Space != "" {
				uris[a.Space] = ""
			}
		}
		return true
	})
	ordered := make([]string, 0, len(uris))
	for u := range uris {
		ordered = append(ordered, u)
	}
	sort.Strings(ordered)
	for i, u := range ordered {
		uris[u] = fmt.Sprintf("ns%d", i)
	}
	// Conventional prefix for XML Schema keeps output readable.
	if _, ok := uris[XSDNamespace]; ok {
		uris[XSDNamespace] = "xsd"
	}
	p := &printer{w: w, prefixes: uris}
	p.element(d.Root, 0, true)
	return p.err
}

// XSDNamespace is the XML Schema namespace URI.
const XSDNamespace = "http://www.w3.org/2001/XMLSchema"

type printer struct {
	w        io.Writer
	prefixes map[string]string
	err      error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func (p *printer) name(space, local string) string {
	if space == "" {
		return local
	}
	return p.prefixes[space] + ":" + local
}

func (p *printer) element(e *Element, indent int, root bool) {
	pad := strings.Repeat("  ", indent)
	p.printf("%s<%s", pad, p.name(e.Space, e.Local))
	if root {
		for _, uri := range sortedURIs(p.prefixes) {
			p.printf(` xmlns:%s="%s"`, p.prefixes[uri], escapeAttr(uri))
		}
	}
	for _, a := range e.Attrs {
		p.printf(` %s="%s"`, p.name(a.Space, a.Local), escapeAttr(a.Value))
	}
	if len(e.Children) == 0 && e.Text == "" {
		p.printf(" />\n")
		return
	}
	p.printf(">")
	if e.Text != "" {
		p.printf("%s", escapeText(e.Text))
	}
	if len(e.Children) > 0 {
		p.printf("\n")
		for _, c := range e.Children {
			p.element(c, indent+1, false)
		}
		p.printf("%s", pad)
	}
	p.printf("</%s>\n", p.name(e.Space, e.Local))
}

func sortedURIs(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for u := range m {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func escapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&#34;")
	return r.Replace(s)
}
