package dom

import "testing"

// FuzzParse drives the fast scanner with arbitrary input.  Invariants: no
// panic; success implies a non-nil root; and when both the fast scanner
// and the encoding/xml reference accept a document, their trees agree.
func FuzzParse(f *testing.F) {
	for _, doc := range corpus {
		f.Add([]byte(doc))
	}
	f.Add([]byte(`<a><b attr="&#x41;">t</b><![CDATA[x]]></a>`))
	f.Add([]byte(`<!DOCTYPE a [<!ENTITY x "y">]><a/>`))
	f.Add([]byte(`<a xmlns:p="u"><p:b p:c="d"/></a>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		fast, errFast := ParseBytes(data)
		if errFast == nil && fast.Root == nil {
			t.Fatal("nil root without error")
		}
		std, errStd := ParseStdString(string(data))
		if errFast == nil && errStd == nil && !equalTrees(fast.Root, std.Root) {
			t.Fatalf("parsers disagree on %q", data)
		}
	})
}
