package dom

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleSchema = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="centerID" type="xsd:string" />
    <xsd:element name="airline" type="xsd:string" />
    <xsd:element name="flightNum" type="xsd:integer" />
    <xsd:element name="off" type="xsd:unsignedLong" />
  </xsd:complexType>
  <xsd:complexType name="SimpleData">
    <xsd:element name="timestep" type="xsd:integer" />
    <xsd:element name="data" type="xsd:float" minOccurs="0" maxOccurs="*"
        dimensionPlacement="before" dimensionName="size" />
  </xsd:complexType>
</xsd:schema>`

func TestParseSchema(t *testing.T) {
	doc, err := ParseString(sampleSchema)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Local != "schema" || doc.Root.Space != XSDNamespace {
		t.Fatalf("root = %s (%s)", doc.Root.Local, doc.Root.Space)
	}
	cts := doc.Root.Descendants("complexType")
	if len(cts) != 2 {
		t.Fatalf("found %d complexTypes, want 2", len(cts))
	}
	if name, _ := cts[0].Attr("name"); name != "ASDOffEvent" {
		t.Errorf("first complexType name = %q", name)
	}
	els := cts[0].ChildrenByName("element")
	if len(els) != 4 {
		t.Fatalf("ASDOffEvent has %d elements, want 4", len(els))
	}
	if typ, _ := els[3].Attr("type"); typ != "xsd:unsignedLong" {
		t.Errorf("off type = %q", typ)
	}
	data := cts[1].Children[1]
	if v := data.AttrDefault("dimensionName", "?"); v != "size" {
		t.Errorf("dimensionName = %q", v)
	}
	if v := data.AttrDefault("missing", "dflt"); v != "dflt" {
		t.Errorf("AttrDefault = %q", v)
	}
	if _, ok := data.Attr("nope"); ok {
		t.Error("Attr should report absence")
	}
}

func TestParseTextAndStructure(t *testing.T) {
	doc, err := ParseString(`<a>hello <b>nested</b> world</a>`)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Text != "hello  world" {
		t.Errorf("root text = %q", doc.Root.Text)
	}
	b := doc.Root.FirstChild("b")
	if b == nil || b.Text != "nested" {
		t.Fatalf("b = %+v", b)
	}
	if b.Parent != doc.Root {
		t.Error("parent pointer wrong")
	}
	if b.Path() != "a/b" {
		t.Errorf("Path = %q", b.Path())
	}
	if doc.Root.FirstChild("zzz") != nil {
		t.Error("FirstChild of missing name should be nil")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`<a>`,
		`<a></b>`,
		`< a`,
		`text only`,
		`<a/><b/>`,
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", s)
		}
	}
}

func TestParseDepthLimit(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString("<a>")
	}
	for i := 0; i < 200; i++ {
		sb.WriteString("</a>")
	}
	if _, err := ParseString(sb.String()); err == nil {
		t.Error("deeply nested document should be rejected")
	}
}

func TestWalkPrune(t *testing.T) {
	doc, _ := ParseString(`<a><b><c/></b><d/></a>`)
	var visited []string
	doc.Root.Walk(func(e *Element) bool {
		visited = append(visited, e.Local)
		return e.Local != "b" // prune below b
	})
	if strings.Join(visited, ",") != "a,b,d" {
		t.Errorf("visited = %v", visited)
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	doc, err := ParseString(sampleSchema)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := doc.WriteXML(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `xmlns:xsd="http://www.w3.org/2001/XMLSchema"`) {
		t.Errorf("serialised output missing xsd namespace:\n%s", out)
	}
	// The serialised document must re-parse to an equivalent tree.
	doc2, err := ParseString(out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if !equalTrees(doc.Root, doc2.Root) {
		t.Errorf("round-tripped tree differs:\n%s", out)
	}
}

func TestWriteXMLEscaping(t *testing.T) {
	doc, err := ParseString(`<a v="x&amp;y&lt;&#34;z"><t>a &lt; b &amp; c</t></a>`)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := doc.WriteXML(&sb); err != nil {
		t.Fatal(err)
	}
	doc2, err := ParseString(sb.String())
	if err != nil {
		t.Fatalf("re-parse escaped: %v\n%s", err, sb.String())
	}
	v, _ := doc2.Root.Attr("v")
	if v != `x&y<"z` {
		t.Errorf("attr = %q", v)
	}
	if doc2.Root.FirstChild("t").Text != "a < b & c" {
		t.Errorf("text = %q", doc2.Root.FirstChild("t").Text)
	}
}

func equalTrees(a, b *Element) bool {
	if a.Space != b.Space || a.Local != b.Local || a.Text != b.Text ||
		len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !equalTrees(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Property: any tree built from sanitised random names/values survives a
// serialise/parse round trip.
func TestQuickWriteParseRoundTrip(t *testing.T) {
	prop := func(names []string, values []string) bool {
		root := &Element{Local: "root"}
		cur := root
		for i, n := range names {
			name := sanitizeName(n)
			el := &Element{Local: name, Parent: cur}
			if i < len(values) {
				el.Attrs = append(el.Attrs, Attr{Local: "v", Value: printable(values[i])})
				el.Text = printable(values[len(values)-1-i])
			}
			cur.Children = append(cur.Children, el)
			if i%3 == 0 {
				cur = el
			}
		}
		var sb strings.Builder
		doc := &Document{Root: root}
		if err := doc.WriteXML(&sb); err != nil {
			return false
		}
		doc2, err := ParseString(sb.String())
		if err != nil {
			t.Logf("re-parse failed: %v\n%s", err, sb.String())
			return false
		}
		return equalTrees(root, doc2.Root)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sanitizeName(s string) string {
	var sb strings.Builder
	sb.WriteByte('e')
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
			sb.WriteRune(r)
		}
	}
	if sb.Len() > 20 {
		return sb.String()[:20]
	}
	return sb.String()
}

func printable(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= 0x20 && r < 0x7f {
			sb.WriteRune(r)
		}
	}
	return strings.TrimSpace(sb.String())
}
