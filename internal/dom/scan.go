package dom

import (
	"bytes"
	"fmt"
	"io"
	"strings"
)

// This file implements a fast, allocation-conscious XML scanner producing
// the same Element trees as the encoding/xml-based parser (kept as
// ParseStd).  The original XMIT used Xerces-C, a native-code parser; this
// scanner plays that role, and the two parsers are checked against each
// other by differential tests.  The supported dialect is the one metadata
// documents use: elements, attributes, namespaces, character data, CDATA,
// comments, processing instructions, a DOCTYPE prologue, and the standard
// entities.

// ParseBytes parses an XML document with the fast scanner.
func ParseBytes(data []byte) (*Document, error) {
	s := &scanner{data: data}
	return s.run()
}

// Parse reads an XML document into a tree using the fast scanner.
// Element and attribute names carry resolved namespace URIs in Space.
func Parse(r io.Reader) (*Document, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dom: %w", err)
	}
	return ParseBytes(data)
}

// ParseString parses a document held in a string.
func ParseString(s string) (*Document, error) {
	return ParseBytes([]byte(s))
}

type scanner struct {
	data []byte
	pos  int

	// Namespace scopes: each element pushes the bindings it declares.
	nsStack  []nsBinding
	nsMarks  []int
	defaults []string // default namespace stack
}

type nsBinding struct {
	prefix string
	uri    string
}

func (s *scanner) errf(format string, args ...any) error {
	return fmt.Errorf("dom: offset %d: %s", s.pos, fmt.Sprintf(format, args...))
}

func (s *scanner) run() (*Document, error) {
	var root, cur *Element
	depth := 0
	s.defaults = append(s.defaults, "")
	var text strings.Builder

	flushText := func() {
		if cur != nil && text.Len() > 0 {
			cur.Text += text.String()
		}
		text.Reset()
	}

	for {
		s.skipInterElement(&text, cur)
		if s.pos >= len(s.data) {
			break
		}
		if s.data[s.pos] != '<' {
			return nil, s.errf("unexpected character %q", s.data[s.pos])
		}
		switch {
		case s.has("</"):
			flushText()
			name, err := s.readEndTag()
			if err != nil {
				return nil, err
			}
			if cur == nil {
				return nil, s.errf("unbalanced end element </%s>", name)
			}
			expect := cur.Local
			if i := strings.IndexByte(name, ':'); i >= 0 {
				name = name[i+1:]
			}
			if name != expect {
				return nil, s.errf("end tag </%s> does not match <%s>", name, expect)
			}
			cur.Text = strings.TrimSpace(cur.Text)
			cur = cur.Parent
			s.popNS()
			depth--
		case s.has("<!--"):
			if err := s.skipUntil("-->"); err != nil {
				return nil, err
			}
		case s.has("<![CDATA["):
			start := s.pos + len("<![CDATA[")
			end := indexFrom(s.data, start, "]]>")
			if end < 0 {
				return nil, s.errf("unterminated CDATA section")
			}
			text.Write(s.data[start:end])
			s.pos = end + 3
		case s.has("<!DOCTYPE"), s.has("<!doctype"):
			if err := s.skipDoctype(); err != nil {
				return nil, err
			}
		case s.has("<?"):
			if err := s.skipUntil("?>"); err != nil {
				return nil, err
			}
		default:
			flushText()
			el, selfClose, err := s.readStartTag(cur)
			if err != nil {
				return nil, err
			}
			depth++
			if depth > maxDepth {
				return nil, s.errf("document nested deeper than %d elements", maxDepth)
			}
			if cur == nil {
				if root != nil {
					return nil, s.errf("multiple root elements")
				}
				root = el
			} else {
				cur.Children = append(cur.Children, el)
			}
			if selfClose {
				s.popNS()
				depth--
			} else {
				cur = el
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("dom: document has no root element")
	}
	if cur != nil {
		return nil, fmt.Errorf("dom: unterminated element %s", cur.Local)
	}
	return &Document{Root: root}, nil
}

// skipInterElement consumes character data up to the next '<' (or EOF),
// decoding entities into text when inside an element.
func (s *scanner) skipInterElement(text *strings.Builder, cur *Element) {
	for s.pos < len(s.data) && s.data[s.pos] != '<' {
		// Bulk-copy the run up to the next markup or entity.
		run := s.pos
		for run < len(s.data) && s.data[run] != '<' && s.data[run] != '&' {
			run++
		}
		if run > s.pos {
			if cur != nil {
				text.Write(s.data[s.pos:run])
			}
			s.pos = run
			continue
		}
		// s.data[s.pos] == '&'
		r, n := decodeEntity(s.data[s.pos:])
		if n > 0 {
			if cur != nil {
				text.WriteString(r)
			}
			s.pos += n
			continue
		}
		if cur != nil {
			text.WriteByte('&')
		}
		s.pos++
	}
}

func (s *scanner) has(prefix string) bool {
	return len(s.data)-s.pos >= len(prefix) && string(s.data[s.pos:s.pos+len(prefix)]) == prefix
}

func (s *scanner) skipUntil(marker string) error {
	end := indexFrom(s.data, s.pos, marker)
	if end < 0 {
		return s.errf("unterminated %q construct", marker)
	}
	s.pos = end + len(marker)
	return nil
}

func indexFrom(data []byte, start int, marker string) int {
	i := bytes.Index(data[start:], []byte(marker))
	if i < 0 {
		return -1
	}
	return start + i
}

// skipDoctype handles an (optionally bracketed) DOCTYPE declaration.
func (s *scanner) skipDoctype() error {
	depth := 0
	for s.pos < len(s.data) {
		switch s.data[s.pos] {
		case '[':
			depth++
		case ']':
			depth--
		case '>':
			if depth <= 0 {
				s.pos++
				return nil
			}
		}
		s.pos++
	}
	return s.errf("unterminated DOCTYPE")
}

func (s *scanner) readEndTag() (string, error) {
	s.pos += 2 // "</"
	name, err := s.readName()
	if err != nil {
		return "", err
	}
	s.skipSpace()
	if s.pos >= len(s.data) || s.data[s.pos] != '>' {
		return "", s.errf("malformed end tag </%s", name)
	}
	s.pos++
	return name, nil
}

// readStartTag parses "<name attr=... >" and returns the element with
// namespaces resolved.
func (s *scanner) readStartTag(parent *Element) (*Element, bool, error) {
	s.pos++ // '<'
	rawName, err := s.readName()
	if err != nil {
		return nil, false, err
	}
	type rawAttr struct{ name, value string }
	var attrs []rawAttr
	selfClose := false
	for {
		s.skipSpace()
		if s.pos >= len(s.data) {
			return nil, false, s.errf("unterminated start tag <%s", rawName)
		}
		switch s.data[s.pos] {
		case '>':
			s.pos++
			goto done
		case '/':
			if !s.has("/>") {
				return nil, false, s.errf("stray '/' in tag <%s>", rawName)
			}
			s.pos += 2
			selfClose = true
			goto done
		}
		name, err := s.readName()
		if err != nil {
			return nil, false, err
		}
		s.skipSpace()
		if s.pos >= len(s.data) || s.data[s.pos] != '=' {
			return nil, false, s.errf("attribute %q missing '='", name)
		}
		s.pos++
		s.skipSpace()
		value, err := s.readAttrValue()
		if err != nil {
			return nil, false, err
		}
		attrs = append(attrs, rawAttr{name: name, value: value})
	}
done:
	// Open a namespace scope and apply declarations before resolving.
	s.pushNS()
	for _, a := range attrs {
		switch {
		case a.name == "xmlns":
			s.defaults[len(s.defaults)-1] = a.value
		case strings.HasPrefix(a.name, "xmlns:"):
			if a.value == "" {
				// Undeclaring a prefix is an XML 1.1 feature; the
				// metadata dialect (like XML 1.0 namespaces) forbids it.
				return nil, false, s.errf("empty namespace URI for prefix %q", a.name[6:])
			}
			s.nsStack = append(s.nsStack, nsBinding{prefix: a.name[6:], uri: a.value})
		}
	}
	el := &Element{Parent: parent}
	prefix, local := splitName(rawName)
	el.Local = local
	if prefix != "" {
		uri, ok := s.lookupNS(prefix)
		if !ok {
			return nil, false, s.errf("undeclared namespace prefix %q", prefix)
		}
		el.Space = uri
	} else {
		el.Space = s.defaults[len(s.defaults)-1]
	}
	for _, a := range attrs {
		if a.name == "xmlns" || strings.HasPrefix(a.name, "xmlns:") {
			continue
		}
		ap, al := splitName(a.name)
		attr := Attr{Local: al, Value: a.value}
		if ap != "" {
			uri, ok := s.lookupNS(ap)
			if !ok {
				return nil, false, s.errf("undeclared namespace prefix %q", ap)
			}
			attr.Space = uri
		}
		el.Attrs = append(el.Attrs, attr)
	}
	return el, selfClose, nil
}

func (s *scanner) pushNS() {
	s.nsMarks = append(s.nsMarks, len(s.nsStack))
	s.defaults = append(s.defaults, s.defaults[len(s.defaults)-1])
}

func (s *scanner) popNS() {
	if n := len(s.nsMarks); n > 0 {
		s.nsStack = s.nsStack[:s.nsMarks[n-1]]
		s.nsMarks = s.nsMarks[:n-1]
		s.defaults = s.defaults[:len(s.defaults)-1]
	}
}

func (s *scanner) lookupNS(prefix string) (string, bool) {
	for i := len(s.nsStack) - 1; i >= 0; i-- {
		if s.nsStack[i].prefix == prefix {
			return s.nsStack[i].uri, true
		}
	}
	// The xml: prefix is implicitly bound.
	if prefix == "xml" {
		return "http://www.w3.org/XML/1998/namespace", true
	}
	return "", false
}

func splitName(name string) (prefix, local string) {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i], name[i+1:]
	}
	return "", name
}

// validName enforces QName shape: at most one colon, neither leading nor
// trailing.
func validName(name string) bool {
	i := strings.IndexByte(name, ':')
	if i < 0 {
		return name != ""
	}
	return i > 0 && i < len(name)-1 && strings.IndexByte(name[i+1:], ':') < 0
}

func (s *scanner) skipSpace() {
	for s.pos < len(s.data) {
		switch s.data[s.pos] {
		case ' ', '\t', '\r', '\n':
			s.pos++
		default:
			return
		}
	}
}

func isNameByte(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':', c >= 0x80:
		return true
	case !first && (c >= '0' && c <= '9' || c == '-' || c == '.'):
		return true
	}
	return false
}

func (s *scanner) readName() (string, error) {
	start := s.pos
	if s.pos >= len(s.data) || !isNameByte(s.data[s.pos], true) {
		return "", s.errf("expected a name")
	}
	s.pos++
	for s.pos < len(s.data) && isNameByte(s.data[s.pos], false) {
		s.pos++
	}
	name := internName(s.data[start:s.pos])
	if !validName(name) {
		return "", s.errf("malformed name %q", name)
	}
	return name, nil
}

// internName avoids allocating for the names that dominate metadata
// documents.
func internName(b []byte) string {
	switch len(b) {
	case 4:
		if string(b) == "name" {
			return "name"
		}
		if string(b) == "type" {
			return "type"
		}
	case 9:
		if string(b) == "maxOccurs" {
			return "maxOccurs"
		}
		if string(b) == "minOccurs" {
			return "minOccurs"
		}
	case 10:
		if string(b) == "xsd:schema" {
			return "xsd:schema"
		}
	case 11:
		if string(b) == "xsd:element" {
			return "xsd:element"
		}
	case 13:
		if string(b) == "dimensionName" {
			return "dimensionName"
		}
	case 15:
		if string(b) == "xsd:complexType" {
			return "xsd:complexType"
		}
	case 18:
		if string(b) == "dimensionPlacement" {
			return "dimensionPlacement"
		}
	}
	return string(b)
}

func (s *scanner) readAttrValue() (string, error) {
	if s.pos >= len(s.data) {
		return "", s.errf("missing attribute value")
	}
	quote := s.data[s.pos]
	if quote != '"' && quote != '\'' {
		return "", s.errf("attribute value must be quoted")
	}
	s.pos++
	start := s.pos
	// Fast path: no entities.
	for s.pos < len(s.data) {
		c := s.data[s.pos]
		if c == quote {
			v := string(s.data[start:s.pos])
			s.pos++
			return v, nil
		}
		if c == '&' {
			return s.readAttrValueSlow(start, quote)
		}
		if c == '<' {
			return "", s.errf("'<' in attribute value")
		}
		s.pos++
	}
	return "", s.errf("unterminated attribute value")
}

func (s *scanner) readAttrValueSlow(start int, quote byte) (string, error) {
	var b strings.Builder
	b.Write(s.data[start:s.pos])
	for s.pos < len(s.data) {
		c := s.data[s.pos]
		switch c {
		case quote:
			s.pos++
			return b.String(), nil
		case '&':
			r, n := decodeEntity(s.data[s.pos:])
			if n == 0 {
				return "", s.errf("malformed entity reference")
			}
			b.WriteString(r)
			s.pos += n
		case '<':
			return "", s.errf("'<' in attribute value")
		default:
			b.WriteByte(c)
			s.pos++
		}
	}
	return "", s.errf("unterminated attribute value")
}

// decodeEntity decodes one entity reference at the start of data, returning
// the replacement text and the number of input bytes consumed (0 if the
// reference is malformed or unknown).
func decodeEntity(data []byte) (string, int) {
	end := -1
	for i := 1; i < len(data) && i < 12; i++ {
		if data[i] == ';' {
			end = i
			break
		}
	}
	if end < 0 {
		return "", 0
	}
	ref := string(data[1:end])
	switch ref {
	case "amp":
		return "&", end + 1
	case "lt":
		return "<", end + 1
	case "gt":
		return ">", end + 1
	case "quot":
		return `"`, end + 1
	case "apos":
		return "'", end + 1
	}
	if len(ref) > 1 && ref[0] == '#' {
		var n rune
		digits := ref[1:]
		base := 10
		if digits[0] == 'x' || digits[0] == 'X' {
			base = 16
			digits = digits[1:]
		}
		if digits == "" {
			return "", 0
		}
		for _, c := range digits {
			var d rune
			switch {
			case c >= '0' && c <= '9':
				d = c - '0'
			case base == 16 && c >= 'a' && c <= 'f':
				d = c - 'a' + 10
			case base == 16 && c >= 'A' && c <= 'F':
				d = c - 'A' + 10
			default:
				return "", 0
			}
			n = n*rune(base) + d
			if n > 0x10FFFF {
				return "", 0
			}
		}
		return string(n), end + 1
	}
	return "", 0
}
