// Package rpcxml implements the SOAP/XML-RPC style interface the paper
// lists as a planned XMIT output mode (§3.2 "Others"): remote calls whose
// envelopes and payloads are XML text, with the payload message formats
// defined by the same metadata the binary mechanisms use.
//
// The envelope is deliberately minimal:
//
//	<call><method>NAME</method><PayloadType>...</PayloadType></call>
//	<reply><PayloadType>...</PayloadType></reply>
//	<reply><fault>message</fault></reply>
//
// Payloads are ordinary xmlwire messages, so any format the toolkit can
// translate works as an argument or result.  The point the paper makes —
// and the benchmarks here reproduce — is that this interoperability costs
// text conversion on every call, which is what XMIT avoids on the data
// path.
package rpcxml

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"

	"github.com/open-metadata/xmit/internal/dom"
	"github.com/open-metadata/xmit/internal/meta"
	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/xmlwire"
)

// maxEnvelope bounds request and reply documents.
const maxEnvelope = 16 << 20

// Handler describes one callable method.
type Handler struct {
	// Method is the method name.
	Method string
	// ReqFormat and RespFormat are the argument and result formats.
	ReqFormat, RespFormat *meta.Format
	// NewReq allocates a request value (a pointer to the bound struct).
	NewReq func() any
	// Call executes the method.
	Call func(req any) (resp any, err error)
}

type compiledHandler struct {
	Handler
	reqCodec  *xmlwire.Codec
	respCodec *xmlwire.Codec
}

// Server dispatches XML calls to registered handlers.  It implements
// http.Handler (POST only).
type Server struct {
	mu       sync.RWMutex
	handlers map[string]*compiledHandler
	dynamic  map[string]*dynamicHandler
}

// NewServer creates an empty server.
func NewServer() *Server {
	return &Server{handlers: make(map[string]*compiledHandler)}
}

// Register installs a handler.  The request codec compiles immediately
// against NewReq's type; the response codec compiles against the concrete
// type of the first reply, which every subsequent reply must match.
func (s *Server) Register(h Handler) error {
	if h.Method == "" || h.ReqFormat == nil || h.RespFormat == nil || h.NewReq == nil || h.Call == nil {
		return fmt.Errorf("rpcxml: incomplete handler for %q", h.Method)
	}
	reqCodec, err := xmlwire.NewCodec(h.ReqFormat, h.NewReq())
	if err != nil {
		return fmt.Errorf("rpcxml: method %q request: %w", h.Method, err)
	}
	ch := &compiledHandler{Handler: h, reqCodec: reqCodec}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[h.Method]; dup {
		return fmt.Errorf("rpcxml: method %q already registered", h.Method)
	}
	s.handlers[h.Method] = ch
	return nil
}

// RegisterDynamic installs a handler that works entirely on dynamic
// records — no compiled Go types on either side, so a server can expose
// methods over formats it discovered at run time.
func (s *Server) RegisterDynamic(method string, reqFmt, respFmt *meta.Format,
	call func(req *pbio.Record) (*pbio.Record, error)) error {
	if method == "" || reqFmt == nil || respFmt == nil || call == nil {
		return fmt.Errorf("rpcxml: incomplete dynamic handler for %q", method)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup || s.dynamic[method] != nil {
		return fmt.Errorf("rpcxml: method %q already registered", method)
	}
	if s.dynamic == nil {
		s.dynamic = make(map[string]*dynamicHandler)
	}
	s.dynamic[method] = &dynamicHandler{reqFmt: reqFmt, respFmt: respFmt, call: call}
	return nil
}

type dynamicHandler struct {
	reqFmt, respFmt *meta.Format
	call            func(*pbio.Record) (*pbio.Record, error)
}

// Methods lists the registered method names.
func (s *Server) Methods() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.handlers)+len(s.dynamic))
	for m := range s.handlers {
		out = append(out, m)
	}
	for m := range s.dynamic {
		out = append(out, m)
	}
	return out
}

// ServeHTTP handles one call.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "rpcxml: POST required", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxEnvelope+1))
	if err != nil || len(body) > maxEnvelope {
		writeFault(w, http.StatusBadRequest, "unreadable or oversized request")
		return
	}
	out, status := s.dispatch(body)
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(status)
	w.Write(out)
}

// dispatch parses the envelope, runs the handler, and renders the reply.
func (s *Server) dispatch(body []byte) ([]byte, int) {
	docT, err := dom.ParseBytes(body)
	if err != nil {
		return faultBody("malformed envelope: " + err.Error()), http.StatusBadRequest
	}
	root := docT.Root
	if root.Local != "call" {
		return faultBody("envelope root must be <call>"), http.StatusBadRequest
	}
	methodEl := root.FirstChild("method")
	if methodEl == nil || methodEl.Text == "" {
		return faultBody("missing <method>"), http.StatusBadRequest
	}
	s.mu.RLock()
	h := s.handlers[methodEl.Text]
	dh := s.dynamic[methodEl.Text]
	s.mu.RUnlock()
	if h == nil && dh == nil {
		return faultBody("unknown method " + methodEl.Text), http.StatusNotFound
	}
	var payload *dom.Element
	for _, c := range root.Children {
		if c.Local != "method" {
			payload = c
			break
		}
	}
	if payload == nil {
		return faultBody("missing payload element"), http.StatusBadRequest
	}
	if dh != nil {
		return s.dispatchDynamic(dh, payload)
	}
	if payload.Local != h.ReqFormat.Name {
		return faultBody(fmt.Sprintf("payload <%s> does not match method argument %q",
			payload.Local, h.ReqFormat.Name)), http.StatusBadRequest
	}
	req := h.NewReq()
	if err := h.reqCodec.DecodeElement(payload, req); err != nil {
		return faultBody("bad argument: " + err.Error()), http.StatusBadRequest
	}
	resp, err := h.Call(req)
	if err != nil {
		return faultBody(err.Error()), http.StatusOK // application fault
	}
	s.mu.Lock()
	if h.respCodec == nil {
		h.respCodec, err = xmlwire.NewCodec(h.RespFormat, resp)
	}
	codec := h.respCodec
	s.mu.Unlock()
	if err != nil {
		return faultBody("internal: response codec: " + err.Error()), http.StatusInternalServerError
	}
	out := []byte("<reply>")
	out, err = codec.Encode(out, resp)
	if err != nil {
		return faultBody("internal: encoding response: " + err.Error()), http.StatusInternalServerError
	}
	out = append(out, "</reply>"...)
	return out, http.StatusOK
}

// dispatchDynamic handles a record-based method.
func (s *Server) dispatchDynamic(dh *dynamicHandler, payload *dom.Element) ([]byte, int) {
	if payload.Local != dh.reqFmt.Name {
		return faultBody(fmt.Sprintf("payload <%s> does not match method argument %q",
			payload.Local, dh.reqFmt.Name)), http.StatusBadRequest
	}
	req, err := xmlwire.DecodeRecordElement(dh.reqFmt, payload)
	if err != nil {
		return faultBody("bad argument: " + err.Error()), http.StatusBadRequest
	}
	resp, err := dh.call(req)
	if err != nil {
		return faultBody(err.Error()), http.StatusOK // application fault
	}
	if resp == nil || resp.Format().ID() != dh.respFmt.ID() {
		return faultBody("internal: handler returned a mismatched record"), http.StatusInternalServerError
	}
	out := []byte("<reply>")
	out, err = xmlwire.EncodeRecord(out, resp)
	if err != nil {
		return faultBody("internal: encoding response: " + err.Error()), http.StatusInternalServerError
	}
	return append(out, "</reply>"...), http.StatusOK
}

// CallRecord invokes a method with a dynamic record argument and returns a
// dynamic record result — no compiled Go types involved on the client
// either.
func (c *Client) CallRecord(method string, req *pbio.Record, respFmt *meta.Format) (*pbio.Record, error) {
	body := []byte("<call><method>")
	body = appendEscapedText(body, method)
	body = append(body, "</method>"...)
	var err error
	body, err = xmlwire.EncodeRecord(body, req)
	if err != nil {
		return nil, err
	}
	body = append(body, "</call>"...)

	httpResp, err := c.http.Post(c.url, "text/xml", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("rpcxml: %w", err)
	}
	defer httpResp.Body.Close()
	replyBytes, err := io.ReadAll(io.LimitReader(httpResp.Body, maxEnvelope+1))
	if err != nil {
		return nil, fmt.Errorf("rpcxml: reading reply: %w", err)
	}
	doc, err := dom.ParseBytes(replyBytes)
	if err != nil {
		return nil, fmt.Errorf("rpcxml: malformed reply: %w", err)
	}
	if doc.Root.Local != "reply" {
		return nil, fmt.Errorf("rpcxml: reply root is <%s>", doc.Root.Local)
	}
	if f := doc.Root.FirstChild("fault"); f != nil {
		return nil, &Fault{Message: f.Text}
	}
	payload := doc.Root.FirstChild(respFmt.Name)
	if payload == nil {
		return nil, fmt.Errorf("rpcxml: reply lacks a <%s> payload", respFmt.Name)
	}
	return xmlwire.DecodeRecordElement(respFmt, payload)
}

func faultBody(msg string) []byte {
	out := []byte("<reply><fault>")
	out = appendEscapedText(out, msg)
	return append(out, "</fault></reply>"...)
}

func appendEscapedText(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			dst = append(dst, "&amp;"...)
		case '<':
			dst = append(dst, "&lt;"...)
		case '>':
			dst = append(dst, "&gt;"...)
		default:
			dst = append(dst, s[i])
		}
	}
	return dst
}

func writeFault(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(status)
	w.Write(faultBody(msg))
}

// Fault is an application-level error returned by a remote method.
type Fault struct {
	Message string
}

// Error implements the error interface.
func (f *Fault) Error() string { return "rpcxml: fault: " + f.Message }

// Client calls methods on an rpcxml server.
type Client struct {
	url  string
	http *http.Client

	mu     sync.Mutex
	codecs map[string]*xmlwire.Codec // by format name + Go type identity is implied by usage
}

// NewClient creates a client for the server at url.
func NewClient(url string) *Client {
	return &Client{url: url, http: http.DefaultClient, codecs: make(map[string]*xmlwire.Codec)}
}

// Call invokes method with the given argument and decodes the result into
// resp.  reqFmt and respFmt are the payload formats (typically XMIT
// binding-token formats).  Application faults are returned as *Fault.
func (c *Client) Call(method string, reqFmt *meta.Format, req any, respFmt *meta.Format, resp any) error {
	reqCodec, err := c.codec(reqFmt, req)
	if err != nil {
		return err
	}
	body := []byte("<call><method>")
	body = appendEscapedText(body, method)
	body = append(body, "</method>"...)
	body, err = reqCodec.Encode(body, req)
	if err != nil {
		return err
	}
	body = append(body, "</call>"...)

	httpResp, err := c.http.Post(c.url, "text/xml", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("rpcxml: %w", err)
	}
	defer httpResp.Body.Close()
	replyBytes, err := io.ReadAll(io.LimitReader(httpResp.Body, maxEnvelope+1))
	if err != nil {
		return fmt.Errorf("rpcxml: reading reply: %w", err)
	}
	doc, err := dom.ParseBytes(replyBytes)
	if err != nil {
		return fmt.Errorf("rpcxml: malformed reply: %w", err)
	}
	if doc.Root.Local != "reply" {
		return fmt.Errorf("rpcxml: reply root is <%s>", doc.Root.Local)
	}
	if f := doc.Root.FirstChild("fault"); f != nil {
		return &Fault{Message: f.Text}
	}
	payload := doc.Root.FirstChild(respFmt.Name)
	if payload == nil {
		return fmt.Errorf("rpcxml: reply lacks a <%s> payload", respFmt.Name)
	}
	respCodec, err := c.codec(respFmt, resp)
	if err != nil {
		return err
	}
	return respCodec.DecodeElement(payload, resp)
}

func (c *Client) codec(f *meta.Format, sample any) (*xmlwire.Codec, error) {
	key := f.ID().String()
	c.mu.Lock()
	defer c.mu.Unlock()
	if codec, ok := c.codecs[key]; ok {
		return codec, nil
	}
	codec, err := xmlwire.NewCodec(f, sample)
	if err != nil {
		return nil, err
	}
	c.codecs[key] = codec
	return codec, nil
}
