package rpcxml

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/open-metadata/xmit/internal/core"
	"github.com/open-metadata/xmit/internal/pbio"
)

const schema = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Query">
    <xsd:element name="station" type="xsd:string" />
    <xsd:element name="from" type="xsd:integer" />
    <xsd:element name="to" type="xsd:integer" />
  </xsd:complexType>
  <xsd:complexType name="Series">
    <xsd:element name="station" type="xsd:string" />
    <xsd:element name="values" type="xsd:float" minOccurs="0" maxOccurs="*"
        dimensionPlacement="before" dimensionName="n" />
  </xsd:complexType>
</xsd:schema>`

type Query struct {
	Station string
	From    int32
	To      int32
}

type Series struct {
	Station string
	N       int32
	Values  []float32
}

func setup(t *testing.T) (*Client, *Server, *core.BindingToken, *core.BindingToken) {
	t.Helper()
	tk := core.NewToolkit()
	if _, err := tk.LoadString(schema); err != nil {
		t.Fatal(err)
	}
	ctx := pbio.NewContext()
	qTok, err := tk.Register("Query", ctx)
	if err != nil {
		t.Fatal(err)
	}
	sTok, err := tk.Register("Series", ctx)
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer()
	err = srv.Register(Handler{
		Method:     "hydro.fetch",
		ReqFormat:  qTok.Format,
		RespFormat: sTok.Format,
		NewReq:     func() any { return &Query{} },
		Call: func(req any) (any, error) {
			q := req.(*Query)
			if q.To < q.From {
				return nil, errors.New("empty range")
			}
			out := &Series{Station: q.Station}
			for i := q.From; i < q.To; i++ {
				out.Values = append(out.Values, float32(i)+0.5)
			}
			return out, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL), srv, qTok, sTok
}

func TestCallRoundTrip(t *testing.T) {
	client, srv, qTok, sTok := setup(t)
	if m := srv.Methods(); len(m) != 1 || m[0] != "hydro.fetch" {
		t.Errorf("Methods = %v", m)
	}
	var out Series
	err := client.Call("hydro.fetch", qTok.Format, &Query{Station: "gauge-7", From: 2, To: 6},
		sTok.Format, &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.Station != "gauge-7" || out.N != 4 || len(out.Values) != 4 || out.Values[0] != 2.5 {
		t.Errorf("reply = %+v", out)
	}
	// Repeated calls exercise codec caches on both sides.
	for i := 0; i < 3; i++ {
		if err := client.Call("hydro.fetch", qTok.Format, &Query{Station: "s", To: 1},
			sTok.Format, &out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestApplicationFault(t *testing.T) {
	client, _, qTok, sTok := setup(t)
	var out Series
	err := client.Call("hydro.fetch", qTok.Format, &Query{From: 5, To: 1}, sTok.Format, &out)
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if fault.Message != "empty range" {
		t.Errorf("fault = %q", fault.Message)
	}
}

func TestUnknownMethod(t *testing.T) {
	client, _, qTok, sTok := setup(t)
	var out Series
	err := client.Call("nope", qTok.Format, &Query{}, sTok.Format, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("err = %v", err)
	}
}

func TestServerRejections(t *testing.T) {
	_, srv, qTok, _ := setup(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL, "text/xml", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := post("not xml"); code != http.StatusBadRequest || !strings.Contains(body, "fault") {
		t.Errorf("garbage: %d %q", code, body)
	}
	if code, _ := post("<notcall/>"); code != http.StatusBadRequest {
		t.Errorf("wrong root: %d", code)
	}
	if code, _ := post("<call><method></method></call>"); code != http.StatusBadRequest {
		t.Errorf("empty method: %d", code)
	}
	if code, _ := post("<call><method>hydro.fetch</method></call>"); code != http.StatusBadRequest {
		t.Errorf("missing payload: %d", code)
	}
	if code, _ := post("<call><method>hydro.fetch</method><Wrong/></call>"); code != http.StatusBadRequest {
		t.Errorf("wrong payload type: %d", code)
	}
	if code, _ := post(`<call><method>hydro.fetch</method><Query><from>x</from></Query></call>`); code != http.StatusBadRequest {
		t.Errorf("bad argument text: %d", code)
	}

	// GET is not allowed.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: %d", resp.StatusCode)
	}
	_ = qTok
}

func TestRegisterValidation(t *testing.T) {
	srv := NewServer()
	if err := srv.Register(Handler{}); err == nil {
		t.Error("empty handler should be rejected")
	}
	tk := core.NewToolkit()
	tk.LoadString(schema)
	ctx := pbio.NewContext()
	qTok, _ := tk.Register("Query", ctx)
	h := Handler{
		Method: "m", ReqFormat: qTok.Format, RespFormat: qTok.Format,
		NewReq: func() any { return &Query{} },
		Call:   func(req any) (any, error) { return req, nil },
	}
	if err := srv.Register(h); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(h); err == nil {
		t.Error("duplicate method should be rejected")
	}
	bad := h
	bad.Method = "m2"
	bad.NewReq = func() any { return 42 }
	if err := srv.Register(bad); err == nil {
		t.Error("non-struct request type should be rejected")
	}
}

func TestFaultEscaping(t *testing.T) {
	_, _, qTok, sTok := setup(t)
	srv := NewServer()
	srv.Register(Handler{
		Method: "boom", ReqFormat: qTok.Format, RespFormat: sTok.Format,
		NewReq: func() any { return &Query{} },
		Call: func(any) (any, error) {
			return nil, errors.New("angle <brackets> & ampersands")
		},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := NewClient(ts.URL)
	var out Series
	err := client.Call("boom", qTok.Format, &Query{}, sTok.Format, &out)
	var fault *Fault
	if !errors.As(err, &fault) || fault.Message != "angle <brackets> & ampersands" {
		t.Errorf("err = %v", err)
	}
}

// TestDynamicRecordCall: a method served and called entirely on dynamic
// records — the fully open path, no compiled Go types anywhere.
func TestDynamicRecordCall(t *testing.T) {
	tk := core.NewToolkit()
	if _, err := tk.LoadString(schema); err != nil {
		t.Fatal(err)
	}
	ctx := pbio.NewContext()
	qTok, _ := tk.Register("Query", ctx)
	sTok, _ := tk.Register("Series", ctx)

	srv := NewServer()
	err := srv.RegisterDynamic("dyn.fetch", qTok.Format, sTok.Format,
		func(req *pbio.Record) (*pbio.Record, error) {
			st, _ := req.Get("station")
			from, _ := req.Get("from")
			to, _ := req.Get("to")
			if to.(int64) < from.(int64) {
				return nil, errors.New("empty range")
			}
			out := pbio.NewRecord(sTok.Format)
			out.Set("station", st)
			var vals []float64
			for i := from.(int64); i < to.(int64); i++ {
				vals = append(vals, float64(i)+0.25)
			}
			out.Set("values", vals)
			return out, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.RegisterDynamic("dyn.fetch", qTok.Format, sTok.Format,
		func(*pbio.Record) (*pbio.Record, error) { return nil, nil }); err == nil {
		t.Error("duplicate dynamic method should fail")
	}
	if err := srv.RegisterDynamic("", nil, nil, nil); err == nil {
		t.Error("incomplete dynamic handler should fail")
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	client := NewClient(ts.URL)
	req := pbio.NewRecord(qTok.Format)
	req.Set("station", "dyn-gauge")
	req.Set("from", 1)
	req.Set("to", 4)
	resp, err := client.CallRecord("dyn.fetch", req, sTok.Format)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := resp.Get("station"); v.(string) != "dyn-gauge" {
		t.Errorf("station = %v", v)
	}
	if v, _ := resp.Get("values"); len(v.([]float64)) != 3 || v.([]float64)[0] != 1.25 {
		t.Errorf("values = %v", v)
	}
	if v, _ := resp.Get("n"); v.(int64) != 3 {
		t.Errorf("n = %v", v)
	}

	// Application fault through the record path.
	req2 := pbio.NewRecord(qTok.Format)
	req2.Set("from", 9)
	req2.Set("to", 1)
	_, err = client.CallRecord("dyn.fetch", req2, sTok.Format)
	var fault *Fault
	if !errors.As(err, &fault) || fault.Message != "empty range" {
		t.Errorf("err = %v", err)
	}
	// Unknown method through the record path.
	if _, err := client.CallRecord("nope", req, sTok.Format); err == nil {
		t.Error("unknown method should fail")
	}
}
