package xdr

import (
	"encoding/binary"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/platform"
)

type msg struct {
	Tag  byte
	Id   int32
	Wide int64
	F    float32
	D    float64
	S    string
	N    int32
	V    []float64
	G    [3]int16
	B    bool
	P    inner
}

type inner struct {
	X float64
	L string
}

func newCodec(t *testing.T, p *platform.Platform) *Codec {
	t.Helper()
	ctx := pbio.NewContext(pbio.WithPlatform(p))
	if _, err := ctx.RegisterFields("inner", []pbio.IOField{
		{Name: "x", Type: "double"},
		{Name: "l", Type: "string"},
	}); err != nil {
		t.Fatal(err)
	}
	f, err := ctx.RegisterFields("msg", []pbio.IOField{
		{Name: "tag", Type: "char"},
		{Name: "id", Type: "integer"},
		{Name: "wide", Type: "integer(8)"},
		{Name: "f", Type: "float"},
		{Name: "d", Type: "double"},
		{Name: "s", Type: "string"},
		{Name: "n", Type: "integer"},
		{Name: "v", Type: "double[n]"},
		{Name: "g", Type: "integer(2)[3]"},
		{Name: "b", Type: "boolean"},
		{Name: "p", Type: "inner"},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCodec(f, &msg{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sample() msg {
	return msg{
		Tag: 9, Id: -5, Wide: 1 << 40, F: 0.5, D: -0.25,
		S: "xdr", N: 2, V: []float64{1, 2},
		G: [3]int16{-3, 0, 3}, B: true, P: inner{X: 7, L: "in"},
	}
}

func TestRoundTrip(t *testing.T) {
	c := newCodec(t, platform.X8664)
	in := sample()
	enc, err := c.Encode(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	var out msg
	if err := c.Decode(enc, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("\n in  %+v\n out %+v", in, out)
	}
}

// TestCanonicalFormat: XDR is defined big-endian with 4-byte quanta, so the
// bytes must be identical regardless of the sender platform ("neither makes
// right" — everyone converts to the canonical form).
func TestCanonicalFormat(t *testing.T) {
	in := sample()
	var encodings [][]byte
	for _, p := range []*platform.Platform{platform.Sparc32, platform.X8664, platform.X86} {
		c := newCodec(t, p)
		enc, err := c.Encode(nil, &in)
		if err != nil {
			t.Fatal(err)
		}
		encodings = append(encodings, enc)
	}
	for i := 1; i < len(encodings); i++ {
		if string(encodings[i]) != string(encodings[0]) {
			t.Errorf("encoding %d differs from canonical form", i)
		}
	}
	// First item: tag occupies a full 4-byte unit, big-endian.
	if binary.BigEndian.Uint32(encodings[0][:4]) != uint32(in.Tag) {
		t.Errorf("tag unit = %x", encodings[0][:4])
	}
}

func TestStringPadding(t *testing.T) {
	ctx := pbio.NewContext()
	f, _ := ctx.RegisterFields("S", []pbio.IOField{
		{Name: "s", Type: "string"},
		{Name: "x", Type: "integer"},
	})
	type S struct {
		S string
		X int32
	}
	c, err := NewCodec(f, &S{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"", "a", "ab", "abc", "abcd", "abcde"} {
		enc, err := c.Encode(nil, &S{S: s, X: 42})
		if err != nil {
			t.Fatal(err)
		}
		if len(enc)%4 != 0 {
			t.Errorf("%q: length %d not a multiple of 4", s, len(enc))
		}
		var out S
		if err := c.Decode(enc, &out); err != nil {
			t.Fatal(err)
		}
		if out.S != s || out.X != 42 {
			t.Errorf("%q: decoded %+v", s, out)
		}
	}
}

func TestLengthMemberSynthesized(t *testing.T) {
	c := newCodec(t, platform.X8664)
	in := sample()
	in.N = -100
	enc, err := c.Encode(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	var out msg
	if err := c.Decode(enc, &out); err != nil {
		t.Fatal(err)
	}
	if out.N != 2 {
		t.Errorf("N = %d, want 2", out.N)
	}
}

func TestErrors(t *testing.T) {
	c := newCodec(t, platform.X8664)
	in := sample()
	enc, _ := c.Encode(nil, &in)
	var out msg
	if err := c.Decode(enc[:5], &out); err == nil {
		t.Error("truncated message should fail")
	}
	if err := c.Decode(enc, out); err == nil {
		t.Error("non-pointer target should fail")
	}
	if _, err := c.Encode(nil, (*msg)(nil)); err == nil {
		t.Error("nil pointer should fail")
	}
	var wrong struct{ Z int }
	if _, err := c.Encode(nil, &wrong); err == nil {
		t.Error("wrong type should fail")
	}
	if err := c.Decode(enc, &wrong); err == nil {
		t.Error("wrong decode type should fail")
	}
	if _, err := NewCodec(c.Format(), "nope"); err == nil {
		t.Error("non-struct sample should fail")
	}
}

func TestQuickGarbage(t *testing.T) {
	c := newCodec(t, platform.Sparc32)
	prop := func(body []byte) bool {
		var out msg
		_ = c.Decode(body, &out)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	c := newCodec(t, platform.X8664)
	prop := func(id int32, wide int64, s string, v []float64) bool {
		if len(v) > 30 {
			v = v[:30]
		}
		for i := range v {
			if v[i] != v[i] {
				v[i] = 0
			}
		}
		in := msg{Id: id, Wide: wide, S: s, N: int32(len(v)), V: v, G: [3]int16{}}
		enc, err := c.Encode(nil, &in)
		if err != nil {
			return false
		}
		var out msg
		if err := c.Decode(enc, &out); err != nil {
			return false
		}
		if out.V == nil {
			out.V = []float64{}
		}
		if in.V == nil {
			in.V = []float64{}
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestEnum8RoundTrip is the regression for a truncation the conformance
// harness found (internal/conform, replay `xmitconform -seed 8 -n 1`): an
// 8-byte enum was forced through the 4-byte XDR unit, so any value above
// 2^32-1 lost its top half.  Wide enums must travel as unsigned hyper.
func TestEnum8RoundTrip(t *testing.T) {
	type m struct {
		E uint64 `xmit:"e"`
	}
	ctx := pbio.NewContext(pbio.WithPlatform(platform.Sparc32))
	f, err := ctx.RegisterFields("m", []pbio.IOField{{Name: "e", Type: "enum(8)"}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCodec(f, &m{})
	if err != nil {
		t.Fatal(err)
	}
	in := m{E: 0x24da69575da9b34b}
	enc, err := c.Encode(nil, &in)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 8 {
		t.Fatalf("enum(8) encodes to %d bytes, want 8", len(enc))
	}
	var out m
	if err := c.Decode(enc, &out); err != nil {
		t.Fatal(err)
	}
	if out.E != in.E {
		t.Fatalf("enum(8) round trip: got %#x, want %#x", out.E, in.E)
	}
}
