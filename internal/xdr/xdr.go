// Package xdr implements Sun XDR (RFC 1014), the External Data
// Representation used by Sun RPC — the classic "canonical format" baseline
// mentioned in the paper's related work.
//
// XDR rules reproduced here: every item occupies a multiple of four bytes;
// integers are big-endian two's complement (hyper = 8 bytes); floats are
// IEEE-754; strings and variable arrays carry a 4-byte count, strings padded
// to a 4-byte boundary.  Unlike PBIO ("receiver makes right") and CDR
// ("reader makes right"), XDR is canonical: *both* sides convert, so even
// two little-endian machines pay byte-swapping costs to talk to each other.
package xdr

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"

	"github.com/open-metadata/xmit/internal/meta"
	"github.com/open-metadata/xmit/internal/refbind"
)

// Codec marshals one (format, Go type) pair in XDR form.
type Codec struct {
	format *meta.Format
	goType reflect.Type
	bounds []refbind.Bound
}

// NewCodec compiles a codec for the format and the Go type of sample.
func NewCodec(f *meta.Format, sample any) (*Codec, error) {
	t, err := refbind.StructType(sample)
	if err != nil {
		return nil, err
	}
	bounds, err := refbind.Compile(f, t, true)
	if err != nil {
		return nil, err
	}
	return &Codec{format: f, goType: t, bounds: bounds}, nil
}

// Format returns the codec's metadata.
func (c *Codec) Format() *meta.Format { return c.format }

// wireSize returns the XDR unit size for a field: 4 bytes for everything
// except 8-byte numeric values (hyper / unsigned hyper / double).  Enums
// count: an 8-byte enum carries 64 bits of information and must travel as
// an unsigned hyper, not be silently truncated through the 4-byte unit
// (XDR's own enums are 32-bit, but this codec serves metadata that allows
// wider ones — found by the conformance harness, see internal/conform).
func wireSize(fl *meta.Field) int {
	if fl.Size == 8 &&
		(fl.Kind == meta.Integer || fl.Kind == meta.Unsigned || fl.Kind == meta.Float || fl.Kind == meta.Enum) {
		return 8
	}
	return 4
}

// Encode appends the XDR encoding of v to dst.
func (c *Codec) Encode(dst []byte, v any) ([]byte, error) {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return nil, fmt.Errorf("xdr: encode: nil pointer")
		}
		rv = rv.Elem()
	}
	if rv.Type() != c.goType {
		return nil, fmt.Errorf("xdr: encode: value type %s does not match bound type %s", rv.Type(), c.goType)
	}
	e := &encoder{buf: dst}
	if err := e.writeStruct(c.bounds, rv); err != nil {
		return nil, err
	}
	return e.buf, nil
}

type encoder struct{ buf []byte }

func (e *encoder) put32(v uint32) {
	var t [4]byte
	binary.BigEndian.PutUint32(t[:], v)
	e.buf = append(e.buf, t[:]...)
}

func (e *encoder) put64(v uint64) {
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], v)
	e.buf = append(e.buf, t[:]...)
}

func (e *encoder) writeStruct(bounds []refbind.Bound, v reflect.Value) error {
	lengthFields := map[string]bool{}
	for i := range bounds {
		if lf := bounds[i].Field.LengthField; lf != "" {
			lengthFields[lowerASCII(lf)] = true
		}
	}
	for i := range bounds {
		b := &bounds[i]
		fl := b.Field
		if b.GoIndex < 0 || lengthFields[lowerASCII(fl.Name)] {
			// Length members are authoritative from the slice length,
			// matching the other encoders.
			if wireSize(fl) == 8 {
				e.put64(uint64(lengthOf(bounds, fl.Name, v)))
			} else {
				e.put32(uint32(lengthOf(bounds, fl.Name, v)))
			}
			continue
		}
		fv := v.Field(b.GoIndex)
		switch {
		case fl.IsDynamic():
			n := fv.Len()
			e.put32(uint32(n))
			for k := 0; k < n; k++ {
				if err := e.writeValue(fl, b, fv.Index(k)); err != nil {
					return err
				}
			}
		case fl.IsStaticArray():
			if fv.Len() != fl.StaticDim {
				return fmt.Errorf("xdr: field %q: %d elements, want %d", fl.Name, fv.Len(), fl.StaticDim)
			}
			for k := 0; k < fl.StaticDim; k++ {
				if err := e.writeValue(fl, b, fv.Index(k)); err != nil {
					return err
				}
			}
		default:
			if err := e.writeValue(fl, b, fv); err != nil {
				return err
			}
		}
	}
	return nil
}

func lengthOf(bounds []refbind.Bound, name string, v reflect.Value) int {
	for i := range bounds {
		b := &bounds[i]
		if b.GoIndex >= 0 && b.Field.IsDynamic() && foldEqual(b.Field.LengthField, name) {
			return v.Field(b.GoIndex).Len()
		}
	}
	return 0
}

func foldEqual(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i]|0x20, b[i]|0x20
		if ca != cb {
			return false
		}
	}
	return true
}

func lowerASCII(s string) string {
	out := []byte(s)
	for i := range out {
		if 'A' <= out[i] && out[i] <= 'Z' {
			out[i] += 'a' - 'A'
		}
	}
	return string(out)
}

func (e *encoder) writeValue(fl *meta.Field, b *refbind.Bound, fv reflect.Value) error {
	switch fl.Kind {
	case meta.Struct:
		return e.writeStruct(b.Sub, fv)
	case meta.String:
		s := fv.String()
		e.put32(uint32(len(s)))
		e.buf = append(e.buf, s...)
		for pad := (4 - len(s)%4) % 4; pad > 0; pad-- {
			e.buf = append(e.buf, 0)
		}
		return nil
	case meta.Float:
		if fl.Size == 8 {
			e.put64(math.Float64bits(fv.Float()))
		} else {
			e.put32(math.Float32bits(float32(fv.Float())))
		}
		return nil
	case meta.Boolean:
		var bit uint32
		if truthy(fv) {
			bit = 1
		}
		e.put32(bit)
		return nil
	default:
		if wireSize(fl) == 8 {
			switch fv.Kind() {
			case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
				e.put64(fv.Uint())
			default:
				e.put64(uint64(fv.Int()))
			}
		} else {
			switch fv.Kind() {
			case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
				e.put32(uint32(fv.Uint()))
			default:
				e.put32(uint32(fv.Int()))
			}
		}
		return nil
	}
}

func truthy(fv reflect.Value) bool {
	switch fv.Kind() {
	case reflect.Bool:
		return fv.Bool()
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return fv.Uint() != 0
	default:
		return fv.Int() != 0
	}
}

// Decode parses an XDR message into out.
func (c *Codec) Decode(data []byte, out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("xdr: decode target must be a non-nil pointer, got %T", out)
	}
	rv = rv.Elem()
	if rv.Type() != c.goType {
		return fmt.Errorf("xdr: decode: target type %s does not match bound type %s", rv.Type(), c.goType)
	}
	d := &decoder{buf: data}
	return d.readStruct(c.bounds, rv)
}

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) get32() (uint32, error) {
	if d.pos+4 > len(d.buf) {
		return 0, fmt.Errorf("xdr: truncated at byte %d", d.pos)
	}
	v := binary.BigEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) get64() (uint64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, fmt.Errorf("xdr: truncated at byte %d", d.pos)
	}
	v := binary.BigEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return v, nil
}

func (d *decoder) readStruct(bounds []refbind.Bound, v reflect.Value) error {
	for i := range bounds {
		b := &bounds[i]
		fl := b.Field
		if b.GoIndex < 0 {
			var err error
			if wireSize(fl) == 8 {
				_, err = d.get64()
			} else {
				_, err = d.get32()
			}
			if err != nil {
				return err
			}
			continue
		}
		fv := v.Field(b.GoIndex)
		switch {
		case fl.IsDynamic():
			nBits, err := d.get32()
			if err != nil {
				return err
			}
			n := int(int32(nBits))
			if n < 0 || n > len(d.buf) {
				return fmt.Errorf("xdr: field %q: implausible element count %d", fl.Name, n)
			}
			fv.Set(reflect.MakeSlice(fv.Type(), n, n))
			for k := 0; k < n; k++ {
				if err := d.readValue(fl, b, fv.Index(k)); err != nil {
					return err
				}
			}
		case fl.IsStaticArray():
			if fv.Kind() == reflect.Slice && fv.Len() != fl.StaticDim {
				fv.Set(reflect.MakeSlice(fv.Type(), fl.StaticDim, fl.StaticDim))
			}
			for k := 0; k < fl.StaticDim; k++ {
				if err := d.readValue(fl, b, fv.Index(k)); err != nil {
					return err
				}
			}
		default:
			if err := d.readValue(fl, b, fv); err != nil {
				return err
			}
		}
	}
	return nil
}

func (d *decoder) readValue(fl *meta.Field, b *refbind.Bound, fv reflect.Value) error {
	switch fl.Kind {
	case meta.Struct:
		return d.readStruct(b.Sub, fv)
	case meta.String:
		nBits, err := d.get32()
		if err != nil {
			return err
		}
		n := int(int32(nBits))
		if n < 0 || d.pos+n > len(d.buf) {
			return fmt.Errorf("xdr: field %q: bad string length %d", fl.Name, n)
		}
		fv.SetString(string(d.buf[d.pos : d.pos+n]))
		d.pos += n + (4-n%4)%4
		return nil
	case meta.Float:
		if fl.Size == 8 {
			bits, err := d.get64()
			if err != nil {
				return err
			}
			fv.SetFloat(math.Float64frombits(bits))
		} else {
			bits, err := d.get32()
			if err != nil {
				return err
			}
			fv.SetFloat(float64(math.Float32frombits(bits)))
		}
		return nil
	default:
		var bits uint64
		var err error
		size := wireSize(fl)
		if size == 8 {
			bits, err = d.get64()
		} else {
			var b32 uint32
			b32, err = d.get32()
			bits = uint64(b32)
		}
		if err != nil {
			return err
		}
		switch fv.Kind() {
		case reflect.Bool:
			fv.SetBool(bits != 0)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fv.SetUint(bits)
		default:
			if fl.Kind == meta.Integer || fl.Kind == meta.Boolean {
				shift := uint(64 - 8*size)
				fv.SetInt(int64(bits<<shift) >> shift)
			} else {
				fv.SetInt(int64(bits))
			}
		}
		return nil
	}
}
