package meta

import (
	"fmt"
	"strings"
)

// Validate checks the structural integrity of a format: non-empty unique
// field names, sane sizes and offsets, non-overlapping slots, dynamic array
// length fields that exist, precede the array, and hold integers, and
// acyclic nested formats.
func (f *Format) Validate() error {
	return f.validate(map[*Format]bool{})
}

func (f *Format) validate(active map[*Format]bool) error {
	if f == nil {
		return fmt.Errorf("meta: nil format")
	}
	if active[f] {
		return fmt.Errorf("meta: format %q is recursively nested", f.Name)
	}
	active[f] = true
	defer delete(active, f)

	if f.Name == "" {
		return fmt.Errorf("meta: format has no name")
	}
	if f.PointerSize != 4 && f.PointerSize != 8 {
		return fmt.Errorf("meta: format %q: pointer size %d is not 4 or 8", f.Name, f.PointerSize)
	}
	if f.Align < 1 || f.Align&(f.Align-1) != 0 {
		return fmt.Errorf("meta: format %q: alignment %d is not a power of two", f.Name, f.Align)
	}
	if f.Size%f.Align != 0 {
		return fmt.Errorf("meta: format %q: size %d is not a multiple of alignment %d", f.Name, f.Size, f.Align)
	}
	seen := make(map[string]bool, len(f.Fields))
	prevEnd := 0
	for i := range f.Fields {
		fl := &f.Fields[i]
		if fl.Name == "" {
			return fmt.Errorf("meta: format %q: field %d has no name", f.Name, i)
		}
		lower := strings.ToLower(fl.Name)
		if seen[lower] {
			return fmt.Errorf("meta: format %q: duplicate field name %q", f.Name, fl.Name)
		}
		seen[lower] = true
		if fl.Kind < 0 || fl.Kind >= numKinds {
			return fmt.Errorf("meta: format %q: field %q has invalid kind", f.Name, fl.Name)
		}
		if err := f.validateFieldSize(fl); err != nil {
			return err
		}
		slot := fl.SlotSize(f.PointerSize)
		if fl.Offset < prevEnd {
			return fmt.Errorf("meta: format %q: field %q at offset %d overlaps previous field (ends at %d)",
				f.Name, fl.Name, fl.Offset, prevEnd)
		}
		if fl.Offset+slot > f.Size {
			return fmt.Errorf("meta: format %q: field %q (offset %d, slot %d) exceeds struct size %d",
				f.Name, fl.Name, fl.Offset, slot, f.Size)
		}
		prevEnd = fl.Offset + slot
		if fl.IsDynamic() {
			if fl.StaticDim > 0 {
				return fmt.Errorf("meta: format %q: field %q is both static and dynamic", f.Name, fl.Name)
			}
			j := f.FieldByName(fl.LengthField)
			if j < 0 {
				return fmt.Errorf("meta: format %q: field %q references unknown length field %q",
					f.Name, fl.Name, fl.LengthField)
			}
			if j >= i {
				return fmt.Errorf("meta: format %q: length field %q must precede dynamic array %q",
					f.Name, fl.LengthField, fl.Name)
			}
			lf := &f.Fields[j]
			if (lf.Kind != Integer && lf.Kind != Unsigned) || lf.StaticDim > 0 || lf.IsDynamic() {
				return fmt.Errorf("meta: format %q: length field %q of %q must be a scalar integer",
					f.Name, fl.LengthField, fl.Name)
			}
		}
		if fl.Kind == Struct {
			if fl.Sub == nil {
				return fmt.Errorf("meta: format %q: struct field %q has no subformat", f.Name, fl.Name)
			}
			if err := fl.Sub.validate(active); err != nil {
				return fmt.Errorf("meta: format %q: field %q: %w", f.Name, fl.Name, err)
			}
		} else if fl.Sub != nil {
			return fmt.Errorf("meta: format %q: non-struct field %q has a subformat", f.Name, fl.Name)
		}
		if fl.Kind == String && (fl.StaticDim > 0 || fl.IsDynamic()) {
			return fmt.Errorf("meta: format %q: field %q: arrays of strings are not supported",
				f.Name, fl.Name)
		}
	}
	return nil
}

func (f *Format) validateFieldSize(fl *Field) error {
	bad := func(allowed string) error {
		return fmt.Errorf("meta: format %q: field %q (%s) has size %d, want %s",
			f.Name, fl.Name, fl.Kind, fl.Size, allowed)
	}
	switch fl.Kind {
	case Integer, Unsigned, Enum:
		switch fl.Size {
		case 1, 2, 4, 8:
		default:
			return bad("1, 2, 4, or 8")
		}
	case Float:
		if fl.Size != 4 && fl.Size != 8 {
			return bad("4 or 8")
		}
	case Char:
		if fl.Size != 1 {
			return bad("1")
		}
	case Boolean:
		switch fl.Size {
		case 1, 2, 4, 8:
		default:
			return bad("1, 2, 4, or 8")
		}
	case String:
		if fl.Size != 1 {
			return bad("1 (per character)")
		}
	case Struct:
		if fl.Sub != nil && fl.Size != fl.Sub.Size {
			return fmt.Errorf("meta: format %q: struct field %q size %d != subformat size %d",
				f.Name, fl.Name, fl.Size, fl.Sub.Size)
		}
	}
	return nil
}
