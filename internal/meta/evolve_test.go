package meta

import (
	"strings"
	"testing"

	"github.com/open-metadata/xmit/internal/platform"
)

// build is a test helper: Build on x86_64 or fail.
func build(t *testing.T, name string, defs []FieldDef) *Format {
	t.Helper()
	f, err := Build(name, platform.X8664, defs)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	return f
}

func TestEvolveDiffTable(t *testing.T) {
	point := []FieldDef{
		{Name: "x", Kind: Float, Class: platform.Double},
		{Name: "y", Kind: Float, Class: platform.Double},
	}
	point3 := append(append([]FieldDef{}, point...),
		FieldDef{Name: "z", Kind: Float, Class: platform.Double})
	pointNarrow := []FieldDef{
		{Name: "x", Kind: Float, Class: platform.Float},
		{Name: "y", Kind: Float, Class: platform.Double},
	}

	cases := []struct {
		name         string
		old, new     []FieldDef
		oldSub       map[string]*Format // Sub wiring by field name
		newSub       map[string]*Format
		wantChanges  int
		wantBackward bool
		wantForward  bool
		wantPath     string // a path that must appear in the diff ("" = none)
		wantChange   ChangeKind
	}{
		{
			name: "identical",
			old: []FieldDef{
				{Name: "n", Kind: Integer, Class: platform.Int},
			},
			new: []FieldDef{
				{Name: "n", Kind: Integer, Class: platform.Int},
			},
			wantChanges: 0, wantBackward: true, wantForward: true,
		},
		{
			name: "added field is default-ok both ways",
			old: []FieldDef{
				{Name: "n", Kind: Integer, Class: platform.Int},
			},
			new: []FieldDef{
				{Name: "n", Kind: Integer, Class: platform.Int},
				{Name: "tag", Kind: String},
			},
			wantChanges: 1, wantBackward: true, wantForward: true,
			wantPath: "tag", wantChange: FieldAdded,
		},
		{
			name: "removed field breaks forward only",
			old: []FieldDef{
				{Name: "n", Kind: Integer, Class: platform.Int},
				{Name: "tag", Kind: String},
			},
			new: []FieldDef{
				{Name: "n", Kind: Integer, Class: platform.Int},
			},
			wantChanges: 1, wantBackward: true, wantForward: false,
			wantPath: "tag", wantChange: FieldRemoved,
		},
		{
			name: "integer widening breaks forward only",
			old: []FieldDef{
				{Name: "n", Kind: Integer, Class: platform.Int},
			},
			new: []FieldDef{
				{Name: "n", Kind: Integer, Class: platform.LongLong},
			},
			wantChanges: 1, wantBackward: true, wantForward: false,
			wantPath: "n", wantChange: TypeChanged,
		},
		{
			name: "integer narrowing breaks backward only",
			old: []FieldDef{
				{Name: "n", Kind: Integer, Class: platform.LongLong},
			},
			new: []FieldDef{
				{Name: "n", Kind: Integer, Class: platform.Int},
			},
			wantChanges: 1, wantBackward: false, wantForward: true,
			wantPath: "n", wantChange: TypeChanged,
		},
		{
			name: "enum width growth breaks forward only",
			old: []FieldDef{
				{Name: "mode", Kind: Enum, Class: platform.Char, ExplicitSize: 1},
			},
			new: []FieldDef{
				{Name: "mode", Kind: Enum, Class: platform.Int, ExplicitSize: 4},
			},
			wantChanges: 1, wantBackward: true, wantForward: false,
			wantPath: "mode", wantChange: TypeChanged,
		},
		{
			name: "enum to wider signed integer is backward-safe",
			old: []FieldDef{
				{Name: "mode", Kind: Enum, Class: platform.Char, ExplicitSize: 1},
			},
			new: []FieldDef{
				{Name: "mode", Kind: Integer, Class: platform.Int, ExplicitSize: 4},
			},
			wantChanges: 1, wantBackward: true, wantForward: false,
			wantPath: "mode", wantChange: TypeChanged,
		},
		{
			name: "signed to unsigned breaks both",
			old: []FieldDef{
				{Name: "n", Kind: Integer, Class: platform.Int},
			},
			new: []FieldDef{
				{Name: "n", Kind: Unsigned, Class: platform.Int},
			},
			wantChanges: 1, wantBackward: false, wantForward: false,
			wantPath: "n", wantChange: TypeChanged,
		},
		{
			name: "float to integer crossing breaks both",
			old: []FieldDef{
				{Name: "v", Kind: Float, Class: platform.Double},
			},
			new: []FieldDef{
				{Name: "v", Kind: Integer, Class: platform.LongLong},
			},
			wantChanges: 1, wantBackward: false, wantForward: false,
			wantPath: "v", wantChange: KindChanged,
		},
		{
			name: "static dim change breaks both",
			old: []FieldDef{
				{Name: "grid", Kind: Integer, Class: platform.Int, StaticDim: 3},
			},
			new: []FieldDef{
				{Name: "grid", Kind: Integer, Class: platform.Int, StaticDim: 4},
			},
			wantChanges: 1, wantBackward: false, wantForward: false,
			wantPath: "grid", wantChange: ShapeChanged,
		},
		{
			name: "dynamic array length-field rename breaks both",
			old: []FieldDef{
				{Name: "size", Kind: Integer, Class: platform.Int},
				{Name: "count", Kind: Integer, Class: platform.Int},
				{Name: "data", Kind: Float, Class: platform.Double, LengthField: "size"},
			},
			new: []FieldDef{
				{Name: "size", Kind: Integer, Class: platform.Int},
				{Name: "count", Kind: Integer, Class: platform.Int},
				{Name: "data", Kind: Float, Class: platform.Double, LengthField: "count"},
			},
			wantChanges: 1, wantBackward: false, wantForward: false,
			wantPath: "data", wantChange: ShapeChanged,
		},
		{
			name: "scalar to dynamic array breaks both",
			old: []FieldDef{
				{Name: "size", Kind: Integer, Class: platform.Int},
				{Name: "v", Kind: Float, Class: platform.Double},
			},
			new: []FieldDef{
				{Name: "size", Kind: Integer, Class: platform.Int},
				{Name: "v", Kind: Float, Class: platform.Double, LengthField: "size"},
			},
			wantChanges: 1, wantBackward: false, wantForward: false,
			wantPath: "v", wantChange: ShapeChanged,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old := build(t, "old", tc.old)
			new := build(t, "new", tc.new)
			d := EvolveDiff(old, new)
			if len(d.Changes) != tc.wantChanges {
				t.Fatalf("changes = %v, want %d entries", d.Changes, tc.wantChanges)
			}
			if got := d.BackwardCompatible(); got != tc.wantBackward {
				t.Errorf("BackwardCompatible = %v, want %v (%v)", got, tc.wantBackward, d.Changes)
			}
			if got := d.ForwardCompatible(); got != tc.wantForward {
				t.Errorf("ForwardCompatible = %v, want %v (%v)", got, tc.wantForward, d.Changes)
			}
			if tc.wantPath != "" {
				found := false
				for _, c := range d.Changes {
					if c.Path == tc.wantPath && c.Change == tc.wantChange {
						found = true
					}
				}
				if !found {
					t.Errorf("diff %v missing %s %s", d.Changes, tc.wantPath, tc.wantChange)
				}
			}
		})
	}

	t.Run("nested record recursion", func(t *testing.T) {
		sub2 := build(t, "point", point)
		sub3 := build(t, "point", point3)
		old := build(t, "shape", []FieldDef{
			{Name: "id", Kind: Integer, Class: platform.Int},
			{Name: "origin", Kind: Struct, Sub: sub2},
		})
		new := build(t, "shape", []FieldDef{
			{Name: "id", Kind: Integer, Class: platform.Int},
			{Name: "origin", Kind: Struct, Sub: sub3},
		})
		d := EvolveDiff(old, new)
		if len(d.Changes) != 1 || d.Changes[0].Path != "origin.z" || d.Changes[0].Change != FieldAdded {
			t.Fatalf("nested diff = %v, want one added origin.z", d.Changes)
		}
		if !d.BackwardCompatible() || !d.ForwardCompatible() {
			t.Errorf("nested field addition should break neither direction: %v", d.Changes)
		}

		// A narrowing inside the nested record must break backward at the
		// dotted path.
		subNarrow := build(t, "point", pointNarrow)
		new2 := build(t, "shape", []FieldDef{
			{Name: "id", Kind: Integer, Class: platform.Int},
			{Name: "origin", Kind: Struct, Sub: subNarrow},
		})
		d2 := EvolveDiff(old, new2)
		if d2.BackwardCompatible() {
			t.Errorf("nested narrowing should break backward: %v", d2.Changes)
		}
		if !d2.ForwardCompatible() {
			t.Errorf("nested narrowing should not break forward: %v", d2.Changes)
		}
		if len(d2.Changes) != 1 || d2.Changes[0].Path != "origin.x" {
			t.Fatalf("nested diff = %v, want one change at origin.x", d2.Changes)
		}
	})
}

// TestConvertibleExported covers the matching rules the registry leans on:
// the exported Convertible must agree with what Match enforces for shared
// fields, across the shapes that trip people up.
func TestConvertibleExported(t *testing.T) {
	sub := build(t, "hdr", []FieldDef{
		{Name: "seq", Kind: Unsigned, Class: platform.Int},
	})
	subOther := build(t, "hdr", []FieldDef{
		{Name: "seq", Kind: String},
	})
	scalarInt := Field{Name: "a", Kind: Integer, Size: 4}
	cases := []struct {
		name   string
		wire   Field
		native Field
		ok     bool
	}{
		{"numeric widths convert freely", Field{Name: "a", Kind: Unsigned, Size: 8}, scalarInt, true},
		{"string matches string", Field{Name: "s", Kind: String, Size: 1}, Field{Name: "s", Kind: String, Size: 1}, true},
		{"string vs numeric rejected", Field{Name: "s", Kind: String, Size: 1}, scalarInt, false},
		{"dynamic vs scalar rejected",
			Field{Name: "a", Kind: Integer, Size: 4, LengthField: "n"}, scalarInt, false},
		{"dynamic arrays need same length field",
			Field{Name: "a", Kind: Integer, Size: 4, LengthField: "n"},
			Field{Name: "a", Kind: Integer, Size: 4, LengthField: "m"}, false},
		{"dynamic length field matches case-insensitively",
			Field{Name: "a", Kind: Integer, Size: 4, LengthField: "N"},
			Field{Name: "a", Kind: Integer, Size: 4, LengthField: "n"}, true},
		{"static dims must agree",
			Field{Name: "a", Kind: Integer, Size: 4, StaticDim: 3},
			Field{Name: "a", Kind: Integer, Size: 4, StaticDim: 4}, false},
		{"structs recurse",
			Field{Name: "h", Kind: Struct, Size: 4, Sub: sub},
			Field{Name: "h", Kind: Struct, Size: 4, Sub: sub}, true},
		{"struct recursion sees inner mismatch",
			Field{Name: "h", Kind: Struct, Size: 4, Sub: subOther},
			Field{Name: "h", Kind: Struct, Size: 4, Sub: sub}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Convertible(&tc.wire, &tc.native)
			if (err == nil) != tc.ok {
				t.Errorf("Convertible = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestWidensTable(t *testing.T) {
	f := func(k Kind, size int) *Field { return &Field{Kind: k, Size: size} }
	cases := []struct {
		name     string
		from, to *Field
		want     bool
	}{
		{"int4 to int8", f(Integer, 4), f(Integer, 8), true},
		{"int8 to int4", f(Integer, 8), f(Integer, 4), false},
		{"uint4 to uint8", f(Unsigned, 4), f(Unsigned, 8), true},
		{"uint4 to int8", f(Unsigned, 4), f(Integer, 8), true},
		{"uint4 to int4 needs sign bit", f(Unsigned, 4), f(Integer, 4), false},
		{"int4 to uint8 loses negatives", f(Integer, 4), f(Unsigned, 8), false},
		{"enum1 to enum4", f(Enum, 1), f(Enum, 4), true},
		{"enum4 to uint4", f(Enum, 4), f(Unsigned, 4), true},
		{"char to uint1", f(Char, 1), f(Unsigned, 1), true},
		{"char to int1 too narrow", f(Char, 1), f(Integer, 1), false},
		{"char to int2", f(Char, 1), f(Integer, 2), true},
		{"bool to bool", f(Boolean, 1), f(Boolean, 4), true},
		{"bool to int", f(Boolean, 1), f(Integer, 4), false},
		{"float4 to float8", f(Float, 4), f(Float, 8), true},
		{"float8 to float4", f(Float, 8), f(Float, 4), false},
		{"int to float never exact", f(Integer, 4), f(Float, 8), false},
		{"float to int never exact", f(Float, 4), f(Integer, 8), false},
		{"string to string", f(String, 1), f(String, 1), true},
	}
	for _, tc := range cases {
		if got := Widens(tc.from, tc.to); got != tc.want {
			t.Errorf("%s: Widens = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestEvolutionDiffBreaking(t *testing.T) {
	old := build(t, "v1", []FieldDef{
		{Name: "keep", Kind: Integer, Class: platform.Int},
		{Name: "gone", Kind: Integer, Class: platform.Int},
		{Name: "w", Kind: Integer, Class: platform.Int},
	})
	new := build(t, "v2", []FieldDef{
		{Name: "keep", Kind: Integer, Class: platform.Int},
		{Name: "w", Kind: Integer, Class: platform.LongLong},
		{Name: "fresh", Kind: String},
	})
	d := EvolveDiff(old, new)
	fwd := d.Breaking(false, true)
	if len(fwd) != 2 {
		t.Fatalf("forward-breaking = %v, want removal of gone and widening of w", fwd)
	}
	for _, c := range fwd {
		if c.Path != "gone" && c.Path != "w" {
			t.Errorf("unexpected forward-breaking change %v", c)
		}
	}
	if got := d.Breaking(true, false); len(got) != 0 {
		t.Errorf("backward-breaking = %v, want none", got)
	}
	// The diff strings must name the offending fields — this is what the
	// registry surfaces in CompatError.
	joined := ""
	for _, c := range fwd {
		joined += c.String() + ";"
	}
	if !strings.Contains(joined, "gone") || !strings.Contains(joined, "w") {
		t.Errorf("diff strings %q do not name the offending fields", joined)
	}
}
