package meta

import (
	"fmt"

	"github.com/open-metadata/xmit/internal/platform"
)

// FieldDef is the input to Build: a field description independent of any
// platform.  Sizes and offsets are resolved against a platform ABI.
type FieldDef struct {
	// Name is the field name.
	Name string
	// Kind classifies the value.
	Kind Kind
	// Class selects the C primitive class whose platform size and
	// alignment the field uses.  Ignored for String and Struct fields.
	Class platform.Class
	// ExplicitSize, when non-zero, overrides the platform size of the
	// class (it must be a power of two no larger than 16).
	ExplicitSize int
	// StaticDim declares a fixed-size array of StaticDim elements.
	StaticDim int
	// LengthField declares a dynamic array sized at run time by the
	// named integer field.
	LengthField string
	// Sub is the nested format for Struct fields; it must have been
	// built for the same platform.
	Sub *Format
}

// Build computes the complete Format for the given field definitions on the
// given platform, assigning C-struct offsets, sizes, and alignment, and
// validating the result.  This is the "native metadata construction" step
// shared by compiled-in registration and XMIT's run-time translation.
func Build(name string, p *platform.Platform, defs []FieldDef) (*Format, error) {
	if p == nil {
		return nil, fmt.Errorf("meta: nil platform building format %q", name)
	}
	f := &Format{
		Name:        name,
		PointerSize: p.PointerSize(),
		BigEndian:   p.BigEndian(),
		Platform:    p.Name,
	}
	items := make([]platform.Item, len(defs))
	f.Fields = make([]Field, len(defs))
	for i, d := range defs {
		fl := Field{
			Name:        d.Name,
			Kind:        d.Kind,
			StaticDim:   d.StaticDim,
			LengthField: d.LengthField,
			Sub:         d.Sub,
		}
		var size, align int
		switch d.Kind {
		case String:
			fl.Size = 1 // one character element
			size, align = p.PointerSize(), p.AlignOf(platform.Pointer)
			if d.StaticDim > 0 {
				return nil, fmt.Errorf("meta: field %q: static arrays of strings are not supported", d.Name)
			}
		case Struct:
			if d.Sub == nil {
				return nil, fmt.Errorf("meta: struct field %q has no subformat", d.Name)
			}
			if d.Sub.Platform != p.Name {
				return nil, fmt.Errorf("meta: struct field %q: subformat %q built for platform %q, want %q",
					d.Name, d.Sub.Name, d.Sub.Platform, p.Name)
			}
			fl.Size = d.Sub.Size
			size, align = d.Sub.Size, d.Sub.Align
		default:
			size = p.SizeOf(d.Class)
			align = p.AlignOf(d.Class)
			if d.ExplicitSize > 0 {
				if d.ExplicitSize > 8 || d.ExplicitSize&(d.ExplicitSize-1) != 0 {
					return nil, fmt.Errorf("meta: field %q: explicit size %d is not a power of two <= 8",
						d.Name, d.ExplicitSize)
				}
				size = d.ExplicitSize
				// Explicitly sized fields align naturally, capped at the
				// platform's strictest natural alignment.
				align = size
				if m := p.AlignOf(platform.Double); align > m {
					align = m
				}
			}
			fl.Size = size
		}
		if fl.IsDynamic() {
			// Dynamic arrays occupy a pointer slot regardless of element type.
			size, align = p.PointerSize(), p.AlignOf(platform.Pointer)
			if d.StaticDim > 0 {
				return nil, fmt.Errorf("meta: field %q is both static and dynamic", d.Name)
			}
		}
		count := 1
		if d.StaticDim > 0 {
			count = d.StaticDim
		}
		items[i] = platform.Item{Name: d.Name, Size: size, Align: align, Count: count}
		f.Fields[i] = fl
	}
	res, err := platform.Layout(items)
	if err != nil {
		return nil, fmt.Errorf("meta: laying out format %q: %w", name, err)
	}
	for i := range f.Fields {
		f.Fields[i].Offset = res.Offsets[i]
	}
	f.Size = res.Size
	f.Align = res.Align
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}
