package meta

import (
	"fmt"
	"strings"
)

// The compatibility rules below implement PBIO's restricted format
// evolution: a receiver can decode any wire format whose fields are a
// name-compatible superset or subset of the fields it expects.  Fields
// present on the wire but unknown to the receiver are skipped; fields the
// receiver expects but the wire lacks are zeroed.  A field shared by both
// sides must be value-convertible (numeric widths and byte orders convert
// freely; strings match strings; nested records match recursively).

// MatchKind classifies the disposition of one field during matching.
type MatchKind int

const (
	// MatchExact means the wire field maps to a native field.
	MatchExact MatchKind = iota
	// MatchSkipped means the wire field has no native counterpart and
	// its contents are ignored (sender evolved ahead of receiver).
	MatchSkipped
	// MatchZeroed means the native field has no wire counterpart and is
	// set to its zero value (receiver evolved ahead of sender).
	MatchZeroed
)

// FieldMatch records the disposition of one field pair.
type FieldMatch struct {
	Kind        MatchKind
	WireIndex   int // -1 when Kind == MatchZeroed
	NativeIndex int // -1 when Kind == MatchSkipped
}

// MatchReport is the result of matching a wire format against a native one.
type MatchReport struct {
	Matches []FieldMatch
	// Exact reports whether every field matched positionally with
	// identical kind, size, and offset (the homogeneous fast path).
	Exact bool
}

// Match computes the field correspondence between a wire format and the
// native format a receiver is bound to.  It returns an error if a shared
// field is not value-convertible.
func Match(wire, native *Format) (*MatchReport, error) {
	rep := &MatchReport{}
	nativeUsed := make([]bool, len(native.Fields))
	exact := len(wire.Fields) == len(native.Fields) &&
		wire.BigEndian == native.BigEndian &&
		wire.PointerSize == native.PointerSize &&
		wire.Size == native.Size
	for wi := range wire.Fields {
		wf := &wire.Fields[wi]
		ni := native.FieldByName(wf.Name)
		if ni < 0 {
			rep.Matches = append(rep.Matches, FieldMatch{Kind: MatchSkipped, WireIndex: wi, NativeIndex: -1})
			exact = false
			continue
		}
		nf := &native.Fields[ni]
		if err := convertible(wf, nf); err != nil {
			return nil, fmt.Errorf("meta: format %q field %q: %w", wire.Name, wf.Name, err)
		}
		nativeUsed[ni] = true
		rep.Matches = append(rep.Matches, FieldMatch{Kind: MatchExact, WireIndex: wi, NativeIndex: ni})
		if ni != wi || wf.Kind != nf.Kind || wf.Size != nf.Size || wf.Offset != nf.Offset ||
			wf.StaticDim != nf.StaticDim || !strings.EqualFold(wf.LengthField, nf.LengthField) {
			exact = false
		}
		if wf.Kind == Struct && exact {
			subRep, err := Match(wf.Sub, nf.Sub)
			if err != nil {
				return nil, err
			}
			if !subRep.Exact {
				exact = false
			}
		}
	}
	for ni := range native.Fields {
		if !nativeUsed[ni] {
			rep.Matches = append(rep.Matches, FieldMatch{Kind: MatchZeroed, WireIndex: -1, NativeIndex: ni})
			exact = false
		}
	}
	rep.Exact = exact
	return rep, nil
}

// convertible reports whether a wire field's values can be converted into a
// native field.
func convertible(wire, native *Field) error {
	// Array shape must agree.
	switch {
	case wire.IsDynamic() != native.IsDynamic():
		return fmt.Errorf("dynamic array mismatch (wire %v, native %v)", wire.IsDynamic(), native.IsDynamic())
	case wire.StaticDim != native.StaticDim:
		return fmt.Errorf("static array mismatch (wire dim %d, native dim %d)", wire.StaticDim, native.StaticDim)
	}
	if wire.IsDynamic() && !strings.EqualFold(wire.LengthField, native.LengthField) {
		return fmt.Errorf("dynamic arrays sized by different fields (%q vs %q)", wire.LengthField, native.LengthField)
	}
	switch {
	case wire.Kind.Numeric() && native.Kind.Numeric():
		return nil
	case wire.Kind == String && native.Kind == String:
		return nil
	case wire.Kind == Struct && native.Kind == Struct:
		_, err := Match(wire.Sub, native.Sub)
		return err
	default:
		return fmt.Errorf("kinds %s and %s are not convertible", wire.Kind, native.Kind)
	}
}

// CompatibleSuperset reports whether newer can be safely sent to receivers
// expecting older: every field of older must be present and convertible in
// newer.  This is the check a format author runs before evolving a format.
func CompatibleSuperset(older, newer *Format) error {
	for i := range older.Fields {
		of := &older.Fields[i]
		ni := newer.FieldByName(of.Name)
		if ni < 0 {
			return fmt.Errorf("meta: evolved format %q dropped field %q required by %q",
				newer.Name, of.Name, older.Name)
		}
		if err := convertible(&newer.Fields[ni], of); err != nil {
			return fmt.Errorf("meta: evolved format %q field %q: %w", newer.Name, of.Name, err)
		}
	}
	return nil
}
