package meta

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// FormatID is a stable 64-bit identifier derived from the canonical
// serialisation of a format.  Two formats have the same ID exactly when
// their canonical serialisations are byte-identical, so an ID names both
// the logical record structure and its concrete wire layout.  Data messages
// carry only the ID; receivers obtain the metadata once, in-band or from a
// format server.
type FormatID uint64

// String renders the ID as fixed-width hex.
func (id FormatID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

const (
	canonVersion   = 1
	canonMagic     = "XMF1"
	flagBigEndian  = 1 << 0
	maxCanonFields = 1 << 16
)

// Canonical returns the canonical binary serialisation of the format.  The
// encoding is self-contained (nested formats are embedded) and versioned;
// it is the unit of metadata exchange between processes.
func (f *Format) Canonical() []byte {
	buf := make([]byte, 0, 64+32*len(f.Fields))
	buf = append(buf, canonMagic...)
	buf = append(buf, canonVersion)
	buf = f.appendCanonical(buf)
	return buf
}

func (f *Format) appendCanonical(buf []byte) []byte {
	buf = appendString(buf, f.Name)
	buf = appendString(buf, f.Platform)
	var flags byte
	if f.BigEndian {
		flags |= flagBigEndian
	}
	buf = append(buf, flags, byte(f.PointerSize))
	buf = appendU32(buf, uint32(f.Size))
	buf = appendU32(buf, uint32(f.Align))
	buf = appendU32(buf, uint32(len(f.Fields)))
	for i := range f.Fields {
		fl := &f.Fields[i]
		buf = appendString(buf, fl.Name)
		buf = append(buf, byte(fl.Kind))
		buf = appendU32(buf, uint32(fl.Size))
		buf = appendU32(buf, uint32(fl.Offset))
		buf = appendU32(buf, uint32(fl.StaticDim))
		buf = appendString(buf, fl.LengthField)
		if fl.Sub != nil {
			buf = append(buf, 1)
			buf = fl.Sub.appendCanonical(buf)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// ID returns the format's content-derived identifier (FNV-1a over the
// canonical serialisation).
func (f *Format) ID() FormatID {
	h := fnv.New64a()
	h.Write(f.Canonical())
	return FormatID(h.Sum64())
}

// ParseCanonical reconstructs a Format from its canonical serialisation.
// The returned format is validated before being returned.
func ParseCanonical(data []byte) (*Format, error) {
	if len(data) < len(canonMagic)+1 {
		return nil, fmt.Errorf("meta: canonical data too short (%d bytes)", len(data))
	}
	if string(data[:len(canonMagic)]) != canonMagic {
		return nil, fmt.Errorf("meta: bad canonical magic %q", data[:len(canonMagic)])
	}
	if data[len(canonMagic)] != canonVersion {
		return nil, fmt.Errorf("meta: unsupported canonical version %d", data[len(canonMagic)])
	}
	d := &canonReader{data: data, pos: len(canonMagic) + 1}
	f, err := d.readFormat(0)
	if err != nil {
		return nil, err
	}
	if d.pos != len(data) {
		return nil, fmt.Errorf("meta: %d trailing bytes after canonical format", len(data)-d.pos)
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("meta: parsed canonical format invalid: %w", err)
	}
	return f, nil
}

type canonReader struct {
	data []byte
	pos  int
}

const maxNesting = 32

func (d *canonReader) readFormat(depth int) (*Format, error) {
	if depth > maxNesting {
		return nil, fmt.Errorf("meta: canonical format nested deeper than %d", maxNesting)
	}
	var f Format
	var err error
	if f.Name, err = d.readString(); err != nil {
		return nil, err
	}
	if f.Platform, err = d.readString(); err != nil {
		return nil, err
	}
	hdr, err := d.readBytes(2)
	if err != nil {
		return nil, err
	}
	f.BigEndian = hdr[0]&flagBigEndian != 0
	f.PointerSize = int(hdr[1])
	if f.Size, err = d.readU32(); err != nil {
		return nil, err
	}
	if f.Align, err = d.readU32(); err != nil {
		return nil, err
	}
	n, err := d.readU32()
	if err != nil {
		return nil, err
	}
	if n > maxCanonFields {
		return nil, fmt.Errorf("meta: canonical format declares %d fields", n)
	}
	f.Fields = make([]Field, n)
	for i := 0; i < n; i++ {
		fl := &f.Fields[i]
		if fl.Name, err = d.readString(); err != nil {
			return nil, err
		}
		kb, err := d.readBytes(1)
		if err != nil {
			return nil, err
		}
		fl.Kind = Kind(kb[0])
		if fl.Size, err = d.readU32(); err != nil {
			return nil, err
		}
		if fl.Offset, err = d.readU32(); err != nil {
			return nil, err
		}
		if fl.StaticDim, err = d.readU32(); err != nil {
			return nil, err
		}
		if fl.LengthField, err = d.readString(); err != nil {
			return nil, err
		}
		hasSub, err := d.readBytes(1)
		if err != nil {
			return nil, err
		}
		if hasSub[0] == 1 {
			if fl.Sub, err = d.readFormat(depth + 1); err != nil {
				return nil, err
			}
		} else if hasSub[0] != 0 {
			return nil, fmt.Errorf("meta: bad subformat marker %d", hasSub[0])
		}
	}
	return &f, nil
}

func (d *canonReader) readBytes(n int) ([]byte, error) {
	if d.pos+n > len(d.data) {
		return nil, fmt.Errorf("meta: canonical data truncated at byte %d", d.pos)
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b, nil
}

func (d *canonReader) readU32() (int, error) {
	b, err := d.readBytes(4)
	if err != nil {
		return 0, err
	}
	return int(binary.BigEndian.Uint32(b)), nil
}

func (d *canonReader) readString() (string, error) {
	b, err := d.readBytes(2)
	if err != nil {
		return "", err
	}
	n := int(binary.BigEndian.Uint16(b))
	s, err := d.readBytes(n)
	if err != nil {
		return "", err
	}
	return string(s), nil
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendString(buf []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	buf = append(buf, byte(len(s)>>8), byte(len(s)))
	return append(buf, s...)
}
