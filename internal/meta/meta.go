// Package meta defines the native metadata model shared by every binary
// communication mechanism (BCM) in this repository.
//
// A Format describes a message as a record of typed Fields, each with a
// wire size and a byte offset inside a fixed-size block laid out exactly
// like a C struct on some platform (see internal/platform).  Formats are
// the "native metadata" of the paper: compiled-in PBIO field lists and
// run-time XMIT translations of XML Schema documents both produce values
// of this type, which is what makes marshaling performance independent of
// how the metadata was discovered.
//
// Formats have a canonical binary serialisation (see Canonical) used both
// to derive stable 64-bit format identifiers and to ship metadata across
// the network (in-band on a connection, or through the format server).
package meta

import (
	"fmt"
	"strings"
)

// Kind classifies the value stored in a field.
type Kind int

const (
	// Integer is a signed two's-complement integer of Field.Size bytes.
	Integer Kind = iota
	// Unsigned is an unsigned integer of Field.Size bytes.
	Unsigned
	// Float is an IEEE-754 floating point value (Size 4 or 8).
	Float
	// Char is a single character byte.
	Char
	// Boolean is a true/false value of Field.Size bytes.
	Boolean
	// Enum is an enumeration constant, stored as an unsigned integer.
	Enum
	// String is a variable-length character string.  Its slot in the
	// fixed block is a pointer-sized offset into the variable section.
	String
	// Struct is a nested record described by Field.Sub.
	Struct

	numKinds
)

var kindNames = [...]string{
	Integer: "integer", Unsigned: "unsigned", Float: "float",
	Char: "char", Boolean: "boolean", Enum: "enum",
	String: "string", Struct: "struct",
}

// String returns the PBIO-style name of the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// KindByName returns the Kind with the given PBIO-style name.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	// Accept common aliases used in PBIO field lists.
	switch name {
	case "unsigned integer":
		return Unsigned, true
	case "double":
		return Float, true
	}
	return 0, false
}

// Numeric reports whether the kind holds a numeric (convertible) value.
func (k Kind) Numeric() bool {
	switch k {
	case Integer, Unsigned, Float, Char, Boolean, Enum:
		return true
	}
	return false
}

// Field describes one member of a record.
type Field struct {
	// Name is the field name.  Matching between wire and native formats
	// is by case-insensitive name, which is what allows formats to
	// evolve without breaking old receivers.
	Name string
	// Kind is the value classification.
	Kind Kind
	// Size is the wire size in bytes of one element of the field.  For
	// String fields it is the size of one character (always 1); the slot
	// occupied in the fixed block is pointer-sized instead.
	Size int
	// Offset is the byte offset of the field's slot in the fixed block.
	Offset int
	// StaticDim is the element count for a static array, or 0 for a
	// scalar.
	StaticDim int
	// LengthField names the integer field holding the run-time element
	// count of a dynamic array; empty for non-dynamic fields.  Dynamic
	// arrays occupy a pointer-sized slot in the fixed block.
	LengthField string
	// Sub describes the nested record for Kind Struct.
	Sub *Format
}

// IsDynamic reports whether the field is a dynamic (run-time sized) array.
func (f *Field) IsDynamic() bool { return f.LengthField != "" }

// IsStaticArray reports whether the field is a fixed-size array.
func (f *Field) IsStaticArray() bool { return f.StaticDim > 0 }

// SlotSize returns the number of bytes the field occupies in the fixed
// block of a format whose pointers are ptrSize bytes wide.
func (f *Field) SlotSize(ptrSize int) int {
	if f.Kind == String || f.IsDynamic() {
		return ptrSize
	}
	n := f.Size
	if f.StaticDim > 0 {
		n *= f.StaticDim
	}
	return n
}

// Format describes a complete message format.
type Format struct {
	// Name is the format (message type) name.
	Name string
	// Fields lists the record members in declaration order.
	Fields []Field
	// Size is the size in bytes of the fixed block (the C struct image).
	Size int
	// Align is the struct alignment in bytes.
	Align int
	// PointerSize is the width of pointer slots in the fixed block.
	PointerSize int
	// BigEndian reports the byte order used for multi-byte values.
	BigEndian bool
	// Platform records the name of the platform whose ABI determined
	// the layout (informational).
	Platform string
}

// FieldByName returns the index of the field with the given name
// (case-insensitive), or -1.
func (f *Format) FieldByName(name string) int {
	for i := range f.Fields {
		if strings.EqualFold(f.Fields[i].Name, name) {
			return i
		}
	}
	return -1
}

// HasVariablePart reports whether encoding a record of this format can
// produce data beyond the fixed block (strings or dynamic arrays, possibly
// inside nested structs).
func (f *Format) HasVariablePart() bool {
	for i := range f.Fields {
		fl := &f.Fields[i]
		if fl.Kind == String || fl.IsDynamic() {
			return true
		}
		if fl.Kind == Struct && fl.Sub.HasVariablePart() {
			return true
		}
	}
	return false
}

// FieldCount returns the total number of leaf (non-struct) fields,
// counting nested records recursively.  The paper observes that
// registration cost tracks this complexity measure rather than raw byte
// size.
func (f *Format) FieldCount() int {
	n := 0
	for i := range f.Fields {
		if f.Fields[i].Kind == Struct {
			n += f.Fields[i].Sub.FieldCount()
		} else {
			n++
		}
	}
	return n
}

// String returns a compact human-readable description of the format.
func (f *Format) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s{size=%d align=%d %s", f.Name, f.Size, f.Align, orderName(f.BigEndian))
	for i := range f.Fields {
		fl := &f.Fields[i]
		fmt.Fprintf(&b, "; %s %s", fl.Name, fl.Kind)
		if fl.Kind == Struct {
			fmt.Fprintf(&b, "(%s)", fl.Sub.Name)
		}
		if fl.StaticDim > 0 {
			fmt.Fprintf(&b, "[%d]", fl.StaticDim)
		}
		if fl.IsDynamic() {
			fmt.Fprintf(&b, "[%s]", fl.LengthField)
		}
		fmt.Fprintf(&b, "@%d:%d", fl.Offset, fl.Size)
	}
	b.WriteString("}")
	return b.String()
}

func orderName(big bool) string {
	if big {
		return "BE"
	}
	return "LE"
}
