package meta

import (
	"fmt"
	"strings"
)

// Format evolution semantics.
//
// Match (compat.go) answers "can this receiver decode that wire format at
// all?"  Evolution answers the stronger registry question: "if a format
// lineage steps from old to new, which deployed parties break?"  Two
// directions matter, named from the reader's point of view:
//
//   - Backward compatibility: a reader bound to the NEW format decodes data
//     written under the OLD format.  Added fields are fine (the old wire
//     lacks them, so the new reader zero-fills — added-with-default).  A
//     shared field may only change type if every old value is exactly
//     representable in the new type (widening).
//
//   - Forward compatibility: a reader still bound to the OLD format decodes
//     data written under the NEW format.  A removed field breaks forward
//     (the old reader loses data it was promised).  A shared field may only
//     change type if every new value is representable in the old type —
//     i.e. the step may narrow, never widen.
//
// "Representable" is the Widens relation below: same-family size growth,
// unsigned-to-wider-signed, char into any integer family wide enough to
// hold a byte.  Shape changes (scalar vs array, static dimension, dynamic
// length field) and kind-family crossings (float vs integer, string vs
// anything else) break both directions.  Nested records recurse: a struct
// field breaks a direction iff its sub-format diff breaks that direction.

// ChangeKind classifies one field-level difference between two versions of
// a format.
type ChangeKind int

const (
	// FieldAdded: the field exists only in the newer format.  Breaks
	// neither direction — old readers skip it, new readers zero-fill when
	// decoding old data.
	FieldAdded ChangeKind = iota
	// FieldRemoved: the field exists only in the older format.  Breaks
	// forward: an old reader decoding new data is zero-filled where it
	// used to receive values.
	FieldRemoved
	// TypeChanged: the field exists in both with the same kind family but
	// a different size (or a lossless family shift such as unsigned to
	// wider signed).  Widening breaks forward, narrowing breaks backward.
	TypeChanged
	// KindChanged: the field crossed kind families (integer vs float,
	// string vs numeric, scalar kind vs struct).  Breaks both directions.
	KindChanged
	// ShapeChanged: the array shape differs — scalar vs array, a
	// different static dimension, or dynamic arrays sized by different
	// length fields.  Breaks both directions.
	ShapeChanged
)

// String returns the wire-stable name of the change kind.
func (k ChangeKind) String() string {
	switch k {
	case FieldAdded:
		return "added"
	case FieldRemoved:
		return "removed"
	case TypeChanged:
		return "type-changed"
	case KindChanged:
		return "kind-changed"
	case ShapeChanged:
		return "shape-changed"
	default:
		return fmt.Sprintf("ChangeKind(%d)", int(k))
	}
}

// ParseChangeKind inverts ChangeKind.String — consumers decoding a
// serialized FieldChange (the registry's CompatError travelling between
// brokers) restore the typed kind from its wire name.
func ParseChangeKind(s string) (ChangeKind, bool) {
	for _, k := range []ChangeKind{FieldAdded, FieldRemoved, TypeChanged, KindChanged, ShapeChanged} {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// FieldChange records one difference between two versions of a format,
// with the compatibility directions it breaks.  Path is the dotted field
// path ("hdr.count" for a field inside a nested record).
type FieldChange struct {
	Path   string     `json:"path"`
	Change ChangeKind `json:"-"`
	Kind   string     `json:"change"` // Change.String(), for machine readers
	Old    string     `json:"old"`    // compact type description, "-" if absent
	New    string     `json:"new"`    // compact type description, "-" if absent
	// BreaksBackward: a reader on the new format cannot losslessly decode
	// old data because of this change.
	BreaksBackward bool `json:"breaks_backward"`
	// BreaksForward: a reader on the old format cannot losslessly decode
	// new data because of this change.
	BreaksForward bool `json:"breaks_forward"`
}

func (c FieldChange) String() string {
	return fmt.Sprintf("%s %s (%s -> %s)", c.Path, c.Change, c.Old, c.New)
}

// EvolutionDiff is the full field-level difference between two versions of
// a format lineage, old preceding new.
type EvolutionDiff struct {
	Changes []FieldChange `json:"changes"`
}

// BackwardCompatible reports whether a reader bound to the new format can
// losslessly decode data written under the old format.
func (d *EvolutionDiff) BackwardCompatible() bool {
	for _, c := range d.Changes {
		if c.BreaksBackward {
			return false
		}
	}
	return true
}

// ForwardCompatible reports whether a reader still bound to the old format
// can losslessly decode data written under the new format.
func (d *EvolutionDiff) ForwardCompatible() bool {
	for _, c := range d.Changes {
		if c.BreaksForward {
			return false
		}
	}
	return true
}

// Breaking returns the subset of changes that break the given directions.
func (d *EvolutionDiff) Breaking(backward, forward bool) []FieldChange {
	var out []FieldChange
	for _, c := range d.Changes {
		if (backward && c.BreaksBackward) || (forward && c.BreaksForward) {
			out = append(out, c)
		}
	}
	return out
}

// EvolveDiff computes the evolution diff from old to new.  Fields are
// matched by case-insensitive name, like Match.
func EvolveDiff(old, new *Format) *EvolutionDiff {
	d := &EvolutionDiff{}
	diffInto(d, "", old, new)
	return d
}

func diffInto(d *EvolutionDiff, prefix string, old, new *Format) {
	newUsed := make([]bool, len(new.Fields))
	for oi := range old.Fields {
		of := &old.Fields[oi]
		path := prefix + of.Name
		ni := new.FieldByName(of.Name)
		if ni < 0 {
			d.add(FieldChange{
				Path: path, Change: FieldRemoved,
				Old: fieldType(of), New: "-",
				BreaksForward: true,
			})
			continue
		}
		newUsed[ni] = true
		nf := &new.Fields[ni]
		if !sameShape(of, nf) {
			d.add(FieldChange{
				Path: path, Change: ShapeChanged,
				Old: fieldShape(of), New: fieldShape(nf),
				BreaksBackward: true, BreaksForward: true,
			})
			continue
		}
		if of.Kind == Struct && nf.Kind == Struct {
			diffInto(d, path+".", of.Sub, nf.Sub)
			continue
		}
		if of.Kind == nf.Kind && of.Size == nf.Size {
			continue
		}
		if !sameFamily(of.Kind, nf.Kind) {
			d.add(FieldChange{
				Path: path, Change: KindChanged,
				Old: fieldType(of), New: fieldType(nf),
				BreaksBackward: !Widens(of, nf), BreaksForward: !Widens(nf, of),
			})
			continue
		}
		d.add(FieldChange{
			Path: path, Change: TypeChanged,
			Old: fieldType(of), New: fieldType(nf),
			BreaksBackward: !Widens(of, nf), BreaksForward: !Widens(nf, of),
		})
	}
	for ni := range new.Fields {
		if !newUsed[ni] {
			nf := &new.Fields[ni]
			d.add(FieldChange{
				Path: prefix + nf.Name, Change: FieldAdded,
				Old: "-", New: fieldType(nf),
			})
		}
	}
}

func (d *EvolutionDiff) add(c FieldChange) {
	c.Kind = c.Change.String()
	d.Changes = append(d.Changes, c)
}

// Widens reports whether every value of the from field's type is exactly
// representable in the to field's type.  This is the per-base-type widening
// table the registry's evolution policies are built on:
//
//	integer  -> integer of equal or larger size
//	unsigned -> unsigned/enum of equal or larger size,
//	            or integer of strictly larger size (room for the sign bit)
//	enum     -> like unsigned (enums are unsigned constants on the wire)
//	char     -> char, unsigned/enum of any size, or integer of size >= 2
//	boolean  -> boolean of any size
//	float    -> float of equal or larger size
//	string   -> string
//
// Float/integer crossings are never widening (neither direction is exact),
// and struct fields are handled by recursion in EvolveDiff, not here.
func Widens(from, to *Field) bool {
	switch from.Kind {
	case Integer:
		return to.Kind == Integer && to.Size >= from.Size
	case Unsigned, Enum:
		switch to.Kind {
		case Unsigned, Enum:
			return to.Size >= from.Size
		case Integer:
			return to.Size > from.Size
		}
		return false
	case Char:
		switch to.Kind {
		case Char, Unsigned, Enum:
			return true
		case Integer:
			return to.Size >= 2
		}
		return false
	case Boolean:
		return to.Kind == Boolean
	case Float:
		return to.Kind == Float && to.Size >= from.Size
	case String:
		return to.Kind == String
	default:
		return false
	}
}

// sameShape reports whether two fields agree on array shape: both scalar,
// both static arrays of the same dimension, or both dynamic arrays sized by
// the same length field.  Scalar-kind-vs-struct is a shape question too: a
// struct cannot occupy a scalar slot.
func sameShape(a, b *Field) bool {
	if a.IsDynamic() != b.IsDynamic() || a.IsStaticArray() != b.IsStaticArray() {
		return false
	}
	if a.IsStaticArray() && a.StaticDim != b.StaticDim {
		return false
	}
	if a.IsDynamic() && !strings.EqualFold(a.LengthField, b.LengthField) {
		return false
	}
	if (a.Kind == Struct) != (b.Kind == Struct) {
		return false
	}
	return true
}

// sameFamily groups kinds that TypeChanged (rather than KindChanged) covers:
// the signed/unsigned/enum/char integer family, and each remaining kind
// alone.
func sameFamily(a, b Kind) bool {
	fam := func(k Kind) int {
		switch k {
		case Integer, Unsigned, Enum, Char:
			return 0
		default:
			return int(k) + 1
		}
	}
	return fam(a) == fam(b)
}

// fieldType renders a compact type description for diffs: "integer:4",
// "struct{point}", "string".
func fieldType(f *Field) string {
	base := ""
	switch f.Kind {
	case Struct:
		name := ""
		if f.Sub != nil {
			name = f.Sub.Name
		}
		base = "struct{" + name + "}"
	case String:
		base = "string"
	default:
		base = fmt.Sprintf("%s:%d", strings.ToLower(f.Kind.String()), f.Size)
	}
	return base + arraySuffix(f)
}

// fieldShape renders the shape part alone, for ShapeChanged diffs.
func fieldShape(f *Field) string {
	kind := "scalar"
	if f.Kind == Struct {
		kind = "struct"
	}
	return kind + arraySuffix(f)
}

func arraySuffix(f *Field) string {
	switch {
	case f.IsDynamic():
		return "[" + f.LengthField + "]"
	case f.IsStaticArray():
		return fmt.Sprintf("[%d]", f.StaticDim)
	default:
		return ""
	}
}

// Convertible reports whether a wire field's values can be decoded into a
// native field under PBIO's matching rules: array shapes must agree
// (dynamic arrays must be sized by the same length field), numeric kinds
// convert freely across widths and signedness, strings match strings, and
// nested records match recursively via Match.  It is the exported form of
// the check Match applies to every shared field.
func Convertible(wire, native *Field) error {
	return convertible(wire, native)
}
