package meta

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/open-metadata/xmit/internal/platform"
)

// randomDefs derives a sanitized, always-valid field definition list from
// raw fuzz bytes.
func randomDefs(raw []byte) []FieldDef {
	var defs []FieldDef
	var lastInt string
	for i, b := range raw {
		if len(defs) >= 20 {
			break
		}
		name := fmt.Sprintf("f%d", i)
		switch b % 7 {
		case 0:
			defs = append(defs, FieldDef{Name: name, Kind: Integer, Class: platform.Int})
			lastInt = name
		case 1:
			defs = append(defs, FieldDef{Name: name, Kind: Unsigned, Class: platform.Long})
		case 2:
			defs = append(defs, FieldDef{Name: name, Kind: Float, Class: platform.Double})
		case 3:
			defs = append(defs, FieldDef{Name: name, Kind: String})
		case 4:
			defs = append(defs, FieldDef{Name: name, Kind: Boolean, Class: platform.Bool})
		case 5:
			defs = append(defs, FieldDef{Name: name, Kind: Char, Class: platform.Char,
				StaticDim: int(b%5) + 1})
		case 6:
			if lastInt != "" {
				defs = append(defs, FieldDef{Name: name, Kind: Float, Class: platform.Float,
					LengthField: lastInt})
			} else {
				defs = append(defs, FieldDef{Name: name, Kind: Enum, Class: platform.Enum})
			}
		}
	}
	if len(defs) == 0 {
		defs = []FieldDef{{Name: "x", Kind: Integer, Class: platform.Int}}
	}
	return defs
}

// Property: every format built from sanitized random definitions
// canonicalises and re-parses to an identical format on every platform.
func TestQuickCanonicalRoundTrip(t *testing.T) {
	plats := platform.All()
	i := 0
	prop := func(raw []byte) bool {
		p := plats[i%len(plats)]
		i++
		f, err := Build("Q", p, randomDefs(raw))
		if err != nil {
			t.Logf("build: %v", err)
			return false
		}
		g, err := ParseCanonical(f.Canonical())
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		if g.ID() != f.ID() || g.String() != f.String() {
			return false
		}
		rep, err := Match(f, g)
		if err != nil || !rep.Exact {
			t.Logf("match: %v exact=%v", err, rep != nil && rep.Exact)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: ParseCanonical never panics on corrupted canonical bytes, and
// any corruption it accepts yields a structurally valid format.
func TestQuickCanonicalCorruption(t *testing.T) {
	f, err := Build("Base", platform.Sparc32, []FieldDef{
		{Name: "a", Kind: Integer, Class: platform.Int},
		{Name: "s", Kind: String},
		{Name: "v", Kind: Float, Class: platform.Float, LengthField: "a"},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := f.Canonical()
	prop := func(pos uint16, val byte, cut uint16) bool {
		mut := append([]byte(nil), base...)
		mut[int(pos)%len(mut)] ^= val
		if int(cut)%4 == 0 {
			mut = mut[:len(mut)-int(cut)%len(mut)]
		}
		g, err := ParseCanonical(mut)
		if err != nil {
			return true
		}
		return g.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}

// Property: format identity is injective over the sampled definition space
// — different sanitized definitions never collide on ID unless their
// formats are byte-identical.
func TestQuickIDInjective(t *testing.T) {
	seen := map[FormatID]string{}
	prop := func(raw []byte) bool {
		f, err := Build("Q", platform.X8664, randomDefs(raw))
		if err != nil {
			return false
		}
		id := f.ID()
		canon := string(f.Canonical())
		if prev, ok := seen[id]; ok {
			return prev == canon
		}
		seen[id] = canon
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
