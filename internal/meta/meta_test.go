package meta

import (
	"strings"
	"testing"

	"github.com/open-metadata/xmit/internal/platform"
)

// simpleDataDefs mirrors the paper's SimpleData struct:
//
//	typedef struct { int timestep; int size; float *data; } SimpleData;
func simpleDataDefs() []FieldDef {
	return []FieldDef{
		{Name: "timestep", Kind: Integer, Class: platform.Int},
		{Name: "size", Kind: Integer, Class: platform.Int},
		{Name: "data", Kind: Float, Class: platform.Float, LengthField: "size"},
	}
}

func TestBuildSimpleDataSparc32(t *testing.T) {
	f, err := Build("SimpleData", platform.Sparc32, simpleDataDefs())
	if err != nil {
		t.Fatal(err)
	}
	// On a 32-bit platform the struct is 12 bytes, as in the paper's
	// Figure 6 (structure size 12).
	if f.Size != 12 {
		t.Errorf("sparc32 SimpleData size = %d, want 12", f.Size)
	}
	if f.Fields[0].Offset != 0 || f.Fields[1].Offset != 4 || f.Fields[2].Offset != 8 {
		t.Errorf("offsets = %d,%d,%d, want 0,4,8",
			f.Fields[0].Offset, f.Fields[1].Offset, f.Fields[2].Offset)
	}
	if !f.BigEndian || f.PointerSize != 4 {
		t.Error("sparc32 format should be big-endian with 4-byte pointers")
	}
	if !f.HasVariablePart() {
		t.Error("SimpleData has a dynamic array; HasVariablePart should be true")
	}
}

func TestBuildSimpleDataX8664(t *testing.T) {
	f, err := Build("SimpleData", platform.X8664, simpleDataDefs())
	if err != nil {
		t.Fatal(err)
	}
	// 4 + 4 + 8-byte pointer = 16 on LP64.
	if f.Size != 16 || f.Fields[2].Offset != 8 {
		t.Errorf("x86_64 SimpleData size=%d data@%d, want 16, 8", f.Size, f.Fields[2].Offset)
	}
	if f.BigEndian {
		t.Error("x86_64 format should be little-endian")
	}
}

func TestBuildJoinRequest(t *testing.T) {
	// typedef struct { char *name; unsigned server; unsigned long ip_addr;
	//                  pid_t pid; unsigned long ds_addr; } JoinRequest;
	defs := []FieldDef{
		{Name: "name", Kind: String},
		{Name: "server", Kind: Unsigned, Class: platform.Int},
		{Name: "ip_addr", Kind: Unsigned, Class: platform.Long},
		{Name: "pid", Kind: Integer, Class: platform.Int},
		{Name: "ds_addr", Kind: Unsigned, Class: platform.Long},
	}
	f, err := Build("JoinRequest", platform.Sparc32, defs)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size != 20 {
		t.Errorf("sparc32 JoinRequest size = %d, want 20 (paper Figure 6)", f.Size)
	}
}

func TestBuildNestedStruct(t *testing.T) {
	inner, err := Build("Point", platform.Sparc32, []FieldDef{
		{Name: "x", Kind: Float, Class: platform.Double},
		{Name: "y", Kind: Float, Class: platform.Double},
	})
	if err != nil {
		t.Fatal(err)
	}
	outer, err := Build("Segment", platform.Sparc32, []FieldDef{
		{Name: "id", Kind: Integer, Class: platform.Int},
		{Name: "a", Kind: Struct, Sub: inner},
		{Name: "b", Kind: Struct, Sub: inner},
	})
	if err != nil {
		t.Fatal(err)
	}
	// id at 0, a at 8 (double alignment), b at 24; size 40.
	if outer.Fields[1].Offset != 8 || outer.Fields[2].Offset != 24 || outer.Size != 40 {
		t.Errorf("layout = a@%d b@%d size %d, want 8, 24, 40",
			outer.Fields[1].Offset, outer.Fields[2].Offset, outer.Size)
	}
	if outer.FieldCount() != 5 {
		t.Errorf("FieldCount = %d, want 5 leaves", outer.FieldCount())
	}
}

func TestBuildStaticArray(t *testing.T) {
	f, err := Build("Block", platform.X8664, []FieldDef{
		{Name: "tag", Kind: Char, Class: platform.Char},
		{Name: "vals", Kind: Integer, Class: platform.Int, StaticDim: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Fields[1].Offset != 4 || f.Size != 28 {
		t.Errorf("vals@%d size=%d, want 4, 28", f.Fields[1].Offset, f.Size)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name string
		defs []FieldDef
	}{
		{"static+dynamic", []FieldDef{
			{Name: "n", Kind: Integer, Class: platform.Int},
			{Name: "v", Kind: Integer, Class: platform.Int, StaticDim: 3, LengthField: "n"},
		}},
		{"string static array", []FieldDef{
			{Name: "s", Kind: String, StaticDim: 3},
		}},
		{"struct without sub", []FieldDef{
			{Name: "s", Kind: Struct},
		}},
		{"dup names", []FieldDef{
			{Name: "x", Kind: Integer, Class: platform.Int},
			{Name: "X", Kind: Integer, Class: platform.Int},
		}},
		{"unknown length field", []FieldDef{
			{Name: "v", Kind: Float, Class: platform.Float, LengthField: "missing"},
		}},
		{"length field after array", []FieldDef{
			{Name: "v", Kind: Float, Class: platform.Float, LengthField: "n"},
			{Name: "n", Kind: Integer, Class: platform.Int},
		}},
		{"non-integer length field", []FieldDef{
			{Name: "n", Kind: Float, Class: platform.Float},
			{Name: "v", Kind: Float, Class: platform.Float, LengthField: "n"},
		}},
		{"bad explicit size", []FieldDef{
			{Name: "x", Kind: Integer, Class: platform.Int, ExplicitSize: 3},
		}},
	}
	for _, c := range cases {
		if _, err := Build(c.name, platform.Sparc32, c.defs); err == nil {
			t.Errorf("%s: Build succeeded, want error", c.name)
		}
	}
	if _, err := Build("nilplat", nil, nil); err == nil {
		t.Error("nil platform should error")
	}
}

func TestBuildCrossPlatformSubformat(t *testing.T) {
	inner, _ := Build("Inner", platform.Sparc32, []FieldDef{
		{Name: "x", Kind: Integer, Class: platform.Int},
	})
	if _, err := Build("Outer", platform.X8664, []FieldDef{
		{Name: "a", Kind: Struct, Sub: inner},
	}); err == nil {
		t.Error("mixing subformat platforms should error")
	}
}

func TestExplicitSize(t *testing.T) {
	f, err := Build("Wide", platform.Sparc32, []FieldDef{
		{Name: "v", Kind: Integer, Class: platform.Int, ExplicitSize: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Fields[0].Size != 8 || f.Size != 8 {
		t.Errorf("explicit size: field %d struct %d, want 8, 8", f.Fields[0].Size, f.Size)
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	inner, _ := Build("Point", platform.Sparc32, []FieldDef{
		{Name: "x", Kind: Float, Class: platform.Double},
		{Name: "y", Kind: Float, Class: platform.Double},
	})
	f, err := Build("Everything", platform.Sparc32, []FieldDef{
		{Name: "count", Kind: Integer, Class: platform.Int},
		{Name: "label", Kind: String},
		{Name: "flags", Kind: Boolean, Class: platform.Bool},
		{Name: "grade", Kind: Char, Class: platform.Char},
		{Name: "mode", Kind: Enum, Class: platform.Enum},
		{Name: "fixed", Kind: Unsigned, Class: platform.Short, StaticDim: 5},
		{Name: "vals", Kind: Float, Class: platform.Float, LengthField: "count"},
		{Name: "origin", Kind: Struct, Sub: inner},
	})
	if err != nil {
		t.Fatal(err)
	}
	data := f.Canonical()
	g, err := ParseCanonical(data)
	if err != nil {
		t.Fatal(err)
	}
	if g.ID() != f.ID() {
		t.Errorf("round-tripped ID %s != original %s", g.ID(), f.ID())
	}
	if g.String() != f.String() {
		t.Errorf("round-tripped format differs:\n got %s\nwant %s", g.String(), f.String())
	}
}

func TestParseCanonicalErrors(t *testing.T) {
	f, _ := Build("F", platform.Sparc32, simpleDataDefs())
	good := f.Canonical()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("ZZZZ"), good[4:]...),
		"bad version": func() []byte {
			b := append([]byte(nil), good...)
			b[4] = 99
			return b
		}(),
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte(nil), good...), 0),
	}
	for name, data := range cases {
		if _, err := ParseCanonical(data); err == nil {
			t.Errorf("%s: ParseCanonical succeeded, want error", name)
		}
	}
}

func TestFormatIDDistinguishesLayouts(t *testing.T) {
	defs := simpleDataDefs()
	a, _ := Build("SimpleData", platform.Sparc32, defs)
	b, _ := Build("SimpleData", platform.X8664, defs)
	c, _ := Build("SimpleData", platform.X86, defs)
	if a.ID() == b.ID() {
		t.Error("sparc32 and x86_64 layouts must have different IDs")
	}
	// x86 and sparc32 have identical sizes but different byte order.
	if a.ID() == c.ID() {
		t.Error("byte order must be part of the format identity")
	}
	a2, _ := Build("SimpleData", platform.Sparc32, defs)
	if a.ID() != a2.ID() {
		t.Error("identical formats must have identical IDs")
	}
}

func TestFieldByNameCaseInsensitive(t *testing.T) {
	f, _ := Build("F", platform.Sparc32, simpleDataDefs())
	if f.FieldByName("TIMESTEP") != 0 || f.FieldByName("Data") != 2 {
		t.Error("FieldByName should be case-insensitive")
	}
	if f.FieldByName("nope") != -1 {
		t.Error("FieldByName of unknown field should return -1")
	}
}

func TestMatchIdentical(t *testing.T) {
	f, _ := Build("F", platform.Sparc32, simpleDataDefs())
	rep, err := Match(f, f)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exact {
		t.Error("a format must match itself exactly")
	}
	for _, m := range rep.Matches {
		if m.Kind != MatchExact {
			t.Errorf("unexpected non-exact match %+v", m)
		}
	}
}

func TestMatchEvolution(t *testing.T) {
	old, _ := Build("Msg", platform.Sparc32, []FieldDef{
		{Name: "a", Kind: Integer, Class: platform.Int},
		{Name: "b", Kind: Float, Class: platform.Double},
	})
	evolved, _ := Build("Msg", platform.Sparc32, []FieldDef{
		{Name: "a", Kind: Integer, Class: platform.Int},
		{Name: "extra", Kind: Integer, Class: platform.Int},
		{Name: "b", Kind: Float, Class: platform.Double},
	})
	// New sender -> old receiver: "extra" is skipped.
	rep, err := Match(evolved, old)
	if err != nil {
		t.Fatal(err)
	}
	skipped, zeroed := 0, 0
	for _, m := range rep.Matches {
		switch m.Kind {
		case MatchSkipped:
			skipped++
		case MatchZeroed:
			zeroed++
		}
	}
	if skipped != 1 || zeroed != 0 {
		t.Errorf("new->old: skipped=%d zeroed=%d, want 1, 0", skipped, zeroed)
	}
	// Old sender -> new receiver: "extra" is zeroed.
	rep, err = Match(old, evolved)
	if err != nil {
		t.Fatal(err)
	}
	skipped, zeroed = 0, 0
	for _, m := range rep.Matches {
		switch m.Kind {
		case MatchSkipped:
			skipped++
		case MatchZeroed:
			zeroed++
		}
	}
	if skipped != 0 || zeroed != 1 {
		t.Errorf("old->new: skipped=%d zeroed=%d, want 0, 1", skipped, zeroed)
	}
	if err := CompatibleSuperset(old, evolved); err != nil {
		t.Errorf("evolved format should be a compatible superset: %v", err)
	}
	if err := CompatibleSuperset(evolved, old); err == nil {
		t.Error("old format drops a field; CompatibleSuperset should fail")
	}
}

func TestMatchIncompatible(t *testing.T) {
	a, _ := Build("M", platform.Sparc32, []FieldDef{
		{Name: "x", Kind: String},
	})
	b, _ := Build("M", platform.Sparc32, []FieldDef{
		{Name: "x", Kind: Integer, Class: platform.Int},
	})
	if _, err := Match(a, b); err == nil {
		t.Error("string vs integer field should not be convertible")
	}

	c, _ := Build("M", platform.Sparc32, []FieldDef{
		{Name: "n", Kind: Integer, Class: platform.Int},
		{Name: "x", Kind: Float, Class: platform.Float, LengthField: "n"},
	})
	d, _ := Build("M", platform.Sparc32, []FieldDef{
		{Name: "n", Kind: Integer, Class: platform.Int},
		{Name: "x", Kind: Float, Class: platform.Float},
	})
	if _, err := Match(c, d); err == nil {
		t.Error("dynamic vs scalar field should not be convertible")
	}
}

func TestMatchCrossPlatformNumericWidths(t *testing.T) {
	// unsigned long is 4 bytes on sparc32 and 8 on x86_64; they must
	// still be convertible.
	defs := []FieldDef{{Name: "addr", Kind: Unsigned, Class: platform.Long}}
	a, _ := Build("M", platform.Sparc32, defs)
	b, _ := Build("M", platform.X8664, defs)
	rep, err := Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Exact {
		t.Error("different layouts must not be reported as exact")
	}
}

func TestValidateRejectsCorrupt(t *testing.T) {
	f, _ := Build("F", platform.Sparc32, simpleDataDefs())

	g := *f
	g.Fields = append([]Field(nil), f.Fields...)
	g.Fields[1].Offset = 2 // overlaps field 0
	if err := g.Validate(); err == nil {
		t.Error("overlapping fields should fail validation")
	}

	h := *f
	h.Size = 8 // field 2 now exceeds struct
	if err := h.Validate(); err == nil {
		t.Error("field beyond struct size should fail validation")
	}

	i := *f
	i.PointerSize = 3
	if err := i.Validate(); err == nil {
		t.Error("bad pointer size should fail validation")
	}

	j := *f
	j.Name = ""
	if err := j.Validate(); err == nil {
		t.Error("empty name should fail validation")
	}
}

func TestValidateRejectsRecursion(t *testing.T) {
	inner, _ := Build("Inner", platform.Sparc32, []FieldDef{
		{Name: "x", Kind: Integer, Class: platform.Int},
	})
	outer, err := Build("Outer", platform.Sparc32, []FieldDef{
		{Name: "in", Kind: Struct, Sub: inner},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Introduce a cycle by hand.
	inner.Fields[0] = Field{Name: "loop", Kind: Struct, Size: outer.Size, Sub: outer}
	inner.Size = outer.Size
	inner.Align = outer.Align
	if err := outer.Validate(); err == nil {
		t.Error("recursive nesting should fail validation")
	}
}

func TestKindHelpers(t *testing.T) {
	if !Integer.Numeric() || !Float.Numeric() || String.Numeric() || Struct.Numeric() {
		t.Error("Numeric() classification wrong")
	}
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if k, ok := KindByName("double"); !ok || k != Float {
		t.Error("alias double should map to Float")
	}
	if k, ok := KindByName("unsigned integer"); !ok || k != Unsigned {
		t.Error("alias 'unsigned integer' should map to Unsigned")
	}
	if _, ok := KindByName("quaternion"); ok {
		t.Error("unknown kind name should not resolve")
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Error("out-of-range Kind.String should include the value")
	}
}

func TestFormatString(t *testing.T) {
	f, _ := Build("SimpleData", platform.Sparc32, simpleDataDefs())
	s := f.String()
	for _, want := range []string{"SimpleData", "timestep", "data", "[size]", "BE"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format.String() = %q missing %q", s, want)
		}
	}
}

func TestFormatIDString(t *testing.T) {
	if len(FormatID(0xdeadbeef).String()) != 16 {
		t.Error("FormatID.String should be 16 hex digits")
	}
}
