package meta

import (
	"testing"

	"github.com/open-metadata/xmit/internal/platform"
)

// FuzzParseCanonical drives the metadata deserialiser with arbitrary bytes.
// Invariants: no panic, and anything accepted is structurally valid and
// re-serialises to an equal format.
func FuzzParseCanonical(f *testing.F) {
	sd, _ := Build("SimpleData", platform.Sparc32, []FieldDef{
		{Name: "timestep", Kind: Integer, Class: platform.Int},
		{Name: "size", Kind: Integer, Class: platform.Int},
		{Name: "data", Kind: Float, Class: platform.Float, LengthField: "size"},
	})
	f.Add(sd.Canonical())
	inner, _ := Build("P", platform.X8664, []FieldDef{
		{Name: "x", Kind: Float, Class: platform.Double},
	})
	nested, _ := Build("N", platform.X8664, []FieldDef{
		{Name: "s", Kind: String},
		{Name: "p", Kind: Struct, Sub: inner},
		{Name: "g", Kind: Unsigned, Class: platform.Short, StaticDim: 3},
	})
	f.Add(nested.Canonical())
	f.Add([]byte("XMF1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseCanonical(data)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid format: %v", err)
		}
		h, err := ParseCanonical(g.Canonical())
		if err != nil {
			t.Fatalf("re-serialisation does not parse: %v", err)
		}
		if h.ID() != g.ID() {
			t.Fatal("re-serialisation changed identity")
		}
	})
}
