// Package xmit_test holds the repository-level benchmark suite: one
// testing.B benchmark family per table/figure in the paper's evaluation.
// Run with:
//
//	go test -bench=. -benchmem
//
// The same experiments, measured with the harness's own timer and printed
// as the paper's tables, are available via `go run ./cmd/xmitbench`.
package xmit_test

import (
	"encoding/binary"
	"testing"

	"github.com/open-metadata/xmit/internal/bench"
	"github.com/open-metadata/xmit/internal/cdr"
	"github.com/open-metadata/xmit/internal/core"
	"github.com/open-metadata/xmit/internal/hydro"
	"github.com/open-metadata/xmit/internal/meta"
	"github.com/open-metadata/xmit/internal/mpidt"
	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/xdr"
	"github.com/open-metadata/xmit/internal/xmlwire"
)

// ---- Figure 3: registration cost, proof-of-concept structures -------------

func BenchmarkFig3Registration(b *testing.B) {
	for _, w := range bench.PocWorkloads() {
		w := w
		schema, err := w.SchemaFor(bench.Paper)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(w.Name+"/PBIO", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := pbio.NewContext(pbio.WithPlatform(bench.Paper))
				for _, fs := range w.FieldSets {
					if _, err := ctx.RegisterFields(fs.Name, fs.Fields); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(w.Name+"/XMIT", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tk := core.NewToolkit()
				if _, err := tk.LoadString(schema); err != nil {
					b.Fatal(err)
				}
				ctx := pbio.NewContext(pbio.WithPlatform(bench.Paper))
				if _, err := tk.Register(w.Name, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 6: registration cost, Hydrology application formats -----------

func BenchmarkFig6Registration(b *testing.B) {
	ws, err := bench.HydroWorkloads()
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range ws {
		w := w
		b.Run(w.Name+"/PBIO", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := pbio.NewContext(pbio.WithPlatform(bench.Paper))
				for _, fs := range w.FieldSets {
					if _, err := ctx.RegisterFields(fs.Name, fs.Fields); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(w.Name+"/XMIT", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tk := core.NewToolkit()
				if _, err := tk.LoadString(w.Schema); err != nil {
					b.Fatal(err)
				}
				ctx := pbio.NewContext(pbio.WithPlatform(bench.Paper))
				if _, err := tk.Register(w.Name, ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 7: marshal time, native vs XMIT-generated metadata ------------

func BenchmarkFig7Encode(b *testing.B) {
	ws, err := bench.HydroWorkloads()
	if err != nil {
		b.Fatal(err)
	}
	samples := bench.HydroSamples()
	for _, w := range ws {
		sample := samples[w.Name]
		nativeCtx, nativeFmt, err := w.BuildFormats(bench.Paper)
		if err != nil {
			b.Fatal(err)
		}
		nb, err := nativeCtx.Bind(nativeFmt, sample)
		if err != nil {
			b.Fatal(err)
		}
		tk := core.NewToolkit()
		if _, err := tk.LoadString(w.Schema); err != nil {
			b.Fatal(err)
		}
		xmitCtx := pbio.NewContext(pbio.WithPlatform(bench.Paper))
		tok, err := tk.Register(w.Name, xmitCtx)
		if err != nil {
			b.Fatal(err)
		}
		xb, err := xmitCtx.Bind(tok.Format, sample)
		if err != nil {
			b.Fatal(err)
		}
		size, _ := nb.EncodedSize(sample)
		buf := make([]byte, 0, size+64)
		b.Run(w.Name+"/NativeMetadata", func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if buf, err = nb.EncodeBody(buf[:0], sample); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(w.Name+"/XMITMetadata", func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if buf, err = xb.EncodeBody(buf[:0], sample); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Figure 8: send-side encode times by mechanism and size ---------------

func fig8Fixtures(b *testing.B, size int) (payload *bench.Payload,
	pb *pbio.Binding, mpiType *mpidt.Datatype, mem []byte,
	cdrC *cdr.Codec, xdrC *xdr.Codec, xmlC *xmlwire.Codec) {
	b.Helper()
	payload, err := bench.NewPayload(size)
	if err != nil {
		b.Fatal(err)
	}
	ctx := pbio.NewContext(pbio.WithPlatform(bench.Paper))
	dynFmt, err := ctx.RegisterFields("Payload", bench.PayloadFields())
	if err != nil {
		b.Fatal(err)
	}
	statFmt, err := ctx.RegisterFields("PayloadStatic", bench.StaticPayloadFields(len(payload.Values)))
	if err != nil {
		b.Fatal(err)
	}
	if pb, err = ctx.Bind(dynFmt, payload); err != nil {
		b.Fatal(err)
	}
	if mpiType, err = mpidt.FromFormat(statFmt); err != nil {
		b.Fatal(err)
	}
	sb, err := ctx.Bind(statFmt, payload)
	if err != nil {
		b.Fatal(err)
	}
	if mem, err = sb.EncodeBody(nil, payload); err != nil {
		b.Fatal(err)
	}
	if cdrC, err = cdr.NewCodec(dynFmt, payload); err != nil {
		b.Fatal(err)
	}
	if xdrC, err = xdr.NewCodec(dynFmt, payload); err != nil {
		b.Fatal(err)
	}
	if xmlC, err = xmlwire.NewCodec(dynFmt, payload); err != nil {
		b.Fatal(err)
	}
	return
}

func BenchmarkFig8Encode(b *testing.B) {
	for _, size := range bench.PayloadSizes {
		payload, pb, mpiType, mem, cdrC, xdrC, xmlC := fig8Fixtures(b, size)
		buf := make([]byte, 0, size*12)
		var err error
		name := func(mech string) string {
			return mech + "/" + sizeName(size)
		}
		b.Run(name("PBIO"), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if buf, err = pb.EncodeBody(buf[:0], payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name("MPI"), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if buf, err = mpidt.Pack(mem, binary.BigEndian, 1, mpiType, buf[:0]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name("CDR"), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if buf, err = cdrC.Encode(buf[:0], payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name("XDR"), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if buf, err = xdrC.Encode(buf[:0], payload); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name("XML"), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if buf, err = xmlC.Encode(buf[:0], payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Decode extends Figure 8 to the receive side, where the
// paper's §4.1 "2-4 orders of magnitude" claim about XML lives: text
// parsing is far costlier than text generation.
func BenchmarkFig8Decode(b *testing.B) {
	for _, size := range bench.PayloadSizes {
		payload, pb, mpiType, mem, cdrC, xdrC, xmlC := fig8Fixtures(b, size)
		ctx := pbio.NewContext(pbio.WithPlatform(bench.Paper))
		if _, err := ctx.RegisterFormat(pb.Format()); err != nil {
			b.Fatal(err)
		}
		pbioMsg, err := pb.EncodeBody(nil, payload)
		if err != nil {
			b.Fatal(err)
		}
		mpiMsg, err := mpidt.Pack(mem, binary.BigEndian, 1, mpiType, nil)
		if err != nil {
			b.Fatal(err)
		}
		cdrMsg, _ := cdrC.Encode(nil, payload)
		xdrMsg, _ := xdrC.Encode(nil, payload)
		xmlMsg, _ := xmlC.Encode(nil, payload)
		var out bench.Payload
		memOut := make([]byte, len(mem))
		name := func(mech string) string { return mech + "/" + sizeName(size) }
		b.Run(name("PBIO"), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if err := ctx.DecodeBody(pb.Format(), pbioMsg, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name("MPI"), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if err := mpidt.Unpack(mpiMsg, memOut, binary.BigEndian, 1, mpiType); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name("CDR"), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if err := cdrC.Decode(cdrMsg, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name("XDR"), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if err := xdrC.Decode(xdrMsg, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name("XML"), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if err := xmlC.Decode(xmlMsg, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(size int) string {
	switch size {
	case 100:
		return "100B"
	case 1000:
		return "1KB"
	case 10000:
		return "10KB"
	case 100000:
		return "100KB"
	}
	return "other"
}

// ---- Figure 1: the SimpleData exchange, binary vs XML wire ----------------

func fig1Fixtures(b *testing.B) (*hydro.SimpleData, *pbio.Context, *meta.Format, *pbio.Binding, *xmlwire.Codec) {
	b.Helper()
	ctx := pbio.NewContext(pbio.WithPlatform(bench.Paper))
	f, err := ctx.RegisterFields("SimpleData", []pbio.IOField{
		{Name: "timestep", Type: "integer"},
		{Name: "size", Type: "integer"},
		{Name: "data", Type: "float[size]"},
	})
	if err != nil {
		b.Fatal(err)
	}
	msg := &hydro.SimpleData{Timestep: 9999, Data: make([]float32, 3355)}
	for i := range msg.Data {
		msg.Data[i] = 12.345
	}
	pb, err := ctx.Bind(f, msg)
	if err != nil {
		b.Fatal(err)
	}
	xc, err := xmlwire.NewCodec(f, msg)
	if err != nil {
		b.Fatal(err)
	}
	return msg, ctx, f, pb, xc
}

// BenchmarkFig1Exchange measures the processing cost of one full exchange
// (sender encode + receiver decode) for each wire format; with wire time
// added at 100 Mb/s, this is the latency comparison behind Figure 1's "XML
// messages are 3 times larger ... twice the latency" discussion.
func BenchmarkFig1Exchange(b *testing.B) {
	msg, ctx, f, pb, xc := fig1Fixtures(b)
	b.Run("BinaryXMIT", func(b *testing.B) {
		var out hydro.SimpleData
		var buf []byte
		var err error
		for i := 0; i < b.N; i++ {
			if buf, err = pb.EncodeBody(buf[:0], msg); err != nil {
				b.Fatal(err)
			}
			if err = ctx.DecodeBody(f, buf, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("XMLWire", func(b *testing.B) {
		var out hydro.SimpleData
		var buf []byte
		var err error
		for i := 0; i < b.N; i++ {
			if buf, err = xc.Encode(buf[:0], msg); err != nil {
				b.Fatal(err)
			}
			if err = xc.Decode(buf, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Application-level benchmark: the Hydrology pipeline ------------------

func BenchmarkHydrologyPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := hydro.RunPipeline(hydro.PipelineConfig{
			Grid:  hydro.Config{Nx: 24, Ny: 24, Seed: 5},
			Steps: 4,
			Sinks: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
