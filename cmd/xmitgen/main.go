// Command xmitgen generates Go message types from XML Schema documents —
// the Go analogue of the paper's Java source generation mode.  The output
// compiles into an application and binds directly to PBIO formats.
//
// Usage:
//
//	xmitgen -pkg messages -platform x86_64 schema.xsd [more.xsd...] > messages.go
//	xmitgen -pkg messages http://host:8700/hydrology.xsd
//	xmitgen -list schema.xsd            # show the types a document defines
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/open-metadata/xmit/internal/core"
	"github.com/open-metadata/xmit/internal/platform"
)

func main() {
	pkg := flag.String("pkg", "messages", "package name for generated source")
	platName := flag.String("platform", "x86_64", "target platform (sparc32, sparc64, x86, x86_64, ppc32)")
	types := flag.String("types", "", "comma-separated type names to generate (default: all)")
	list := flag.Bool("list", false, "list the complexTypes defined by the documents and exit")
	out := flag.String("o", "", "output file (default: stdout)")
	flag.Parse()

	if flag.NArg() == 0 {
		log.Fatal("xmitgen: no schema documents given (files or URLs)")
	}
	p := platform.ByName(*platName)
	if p == nil {
		log.Fatalf("xmitgen: unknown platform %q", *platName)
	}

	tk := core.NewToolkit()
	for _, arg := range flag.Args() {
		names, err := tk.LoadURL(arg)
		if err != nil {
			log.Fatalf("xmitgen: loading %s: %v", arg, err)
		}
		if *list {
			for _, n := range names {
				fmt.Printf("%s\t%s\n", arg, n)
			}
		}
	}
	if *list {
		return
	}

	var typeNames []string
	if *types != "" {
		typeNames = strings.Split(*types, ",")
	}
	src, err := tk.GenerateGo(*pkg, typeNames, p)
	if err != nil {
		log.Fatalf("xmitgen: %v", err)
	}
	if *out == "" {
		os.Stdout.Write(src)
		return
	}
	if err := os.WriteFile(*out, src, 0o644); err != nil {
		log.Fatalf("xmitgen: %v", err)
	}
}
