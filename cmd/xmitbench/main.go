// Command xmitbench regenerates the paper's evaluation figures
// (Section 4) on the local machine and prints each as a table.
//
// Usage:
//
//	xmitbench                      # all figures
//	xmitbench -fig 8               # one figure (1, 3, 6, 7, 8, or "expansion")
//	xmitbench -fig 8,send,fanout   # several figures
//	xmitbench -quick               # fast, low-precision pass
//	xmitbench -json out.json       # also write machine-readable records
//	xmitbench -baseline BENCH.json # fail on >tolerance throughput regression
//	xmitbench -history DIR         # widen the baseline with prior runs' records
//	xmitbench -require-figs        # fail if a requested figure yields no records
//	xmitbench -count 5             # repeat each figure; records carry mean and min/max
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"github.com/open-metadata/xmit/internal/bench"
	"github.com/open-metadata/xmit/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", `comma-separated figures to regenerate: 1, 3, 6, 7, 8, "expansion", "amortization", "ablations", "allocs", "fanout", "send", "scale", "mesh", "writev", "evolve", "evolve-mesh", "coldstart", or "all"`)
	quick := flag.Bool("quick", false, "use fast, low-precision measurement settings")
	count := flag.Int("count", 1, "repetitions per figure; JSON records carry the mean plus min/max spread")
	metricsAddr := flag.String("metrics", "", "serve the process obs registry at /metrics on this HTTP address while running (empty: disabled)")
	stats := flag.Bool("stats", false, "dump the process obs registry as JSON to stderr after the run")
	jsonOut := flag.String("json", "", "write machine-readable benchmark records to this file (figures 8, fanout, send, and scale)")
	baseline := flag.String("baseline", "", "compare this run's throughput records against a baseline JSON file; exit nonzero on regression")
	history := flag.String("history", "", "directory of prior runs' record files (*.json); the gate compares against the best of baseline and history per metric (trend-aware)")
	tolerance := flag.Float64("tolerance", 0.35, "allowed fractional throughput drop vs the baseline before failing")
	requireFigs := flag.Bool("require-figs", false, "fail if a requested record-producing figure contributed no records (guards the gate against vacuous passes)")
	flag.Parse()

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Default().Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "xmitbench: metrics:", err)
			}
		}()
	}

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	if *count < 1 {
		*count = 1
	}
	var runs [][]bench.JSONRecord
	var err error
	for rep := 0; rep < *count; rep++ {
		out := io.Writer(os.Stdout)
		if rep > 0 {
			out = io.Discard // tables print once; later reps only feed the records
		}
		var recs []bench.JSONRecord
		recs, err = run(*fig, opts, out)
		if err != nil {
			break
		}
		runs = append(runs, recs)
	}
	var records []bench.JSONRecord
	if len(runs) > 0 {
		records = bench.MergeRecords(runs)
	}
	if *stats {
		obs.Default().WriteJSON(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmitbench:", err)
		os.Exit(1)
	}
	if *jsonOut != "" {
		if err := bench.WriteJSONFile(*jsonOut, records); err != nil {
			fmt.Fprintln(os.Stderr, "xmitbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "xmitbench: wrote %d records to %s\n", len(records), *jsonOut)
	}
	if *requireFigs {
		missing := bench.RequireFigures(strings.Split(*fig, ","), records)
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "xmitbench: %d requested figure(s) yielded no records:\n", len(missing))
			for _, m := range missing {
				fmt.Fprintln(os.Stderr, "  "+m)
			}
			os.Exit(3)
		}
	}
	if *baseline != "" {
		base, err := bench.ReadJSONFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmitbench:", err)
			os.Exit(1)
		}
		if *history != "" {
			// Trend-aware gating: fold prior runs into the baseline so a
			// committed baseline recorded on a slow day cannot hide a real
			// regression.  Unreadable history files are skipped — history is
			// an opportunistic tightening, never a reason to fail the gate.
			paths, _ := filepath.Glob(filepath.Join(*history, "*.json"))
			var prior [][]bench.JSONRecord
			for _, p := range paths {
				if recs, err := bench.ReadJSONFile(p); err == nil {
					prior = append(prior, recs)
				} else {
					fmt.Fprintf(os.Stderr, "xmitbench: skipping history file %s: %v\n", p, err)
				}
			}
			if len(prior) > 0 {
				base = bench.BestBaseline(base, prior...)
				fmt.Fprintf(os.Stderr, "xmitbench: baseline widened with %d prior run(s) from %s\n", len(prior), *history)
			}
		}
		regs := bench.CompareJSON(base, records, *tolerance)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "xmitbench: %d throughput regression(s) vs %s (tolerance %.0f%%):\n",
				len(regs), *baseline, *tolerance*100)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "xmitbench: no throughput regressions vs %s (tolerance %.0f%%)\n",
			*baseline, *tolerance*100)
	}
}

func run(figs string, opts bench.Options, out io.Writer) ([]bench.JSONRecord, error) {
	wanted := make(map[string]bool)
	for _, f := range strings.Split(figs, ",") {
		if f = strings.TrimSpace(f); f != "" {
			wanted[f] = true
		}
	}
	want := func(name string) bool { return wanted["all"] || wanted[name] }
	var records []bench.JSONRecord
	ran := false

	if want("1") {
		ran = true
		res, err := bench.Fig1(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintFig1(out, res)
		fmt.Fprintln(out)
	}
	if want("3") {
		ran = true
		rows, err := bench.Fig3(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintFig3(out, rows)
		fmt.Fprintln(out)
	}
	if want("6") {
		ran = true
		rows, err := bench.Fig6(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintFig6(out, rows)
		fmt.Fprintln(out)
	}
	if want("7") {
		ran = true
		rows, err := bench.Fig7(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintFig7(out, rows)
		fmt.Fprintln(out)
	}
	if want("8") {
		ran = true
		rows, err := bench.Fig8(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintFig8(out, rows)
		fmt.Fprintln(out)
		records = append(records, bench.Fig8Records(rows)...)
	}
	if want("expansion") {
		ran = true
		rows, err := bench.Expansion()
		if err != nil {
			return nil, err
		}
		bench.PrintExpansion(out, rows)
		fmt.Fprintln(out)
	}
	if want("amortization") {
		ran = true
		rows, err := bench.Amortization(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintAmortization(out, rows)
		fmt.Fprintln(out)
	}
	if want("ablations") {
		ran = true
		stages, err := bench.AblationRegistrationStages(opts)
		if err != nil {
			return nil, err
		}
		conv, err := bench.AblationConversion(opts)
		if err != nil {
			return nil, err
		}
		fast, err := bench.AblationFastPaths(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintAblations(out, stages, conv, fast)
		fmt.Fprintln(out)
	}
	if want("allocs") {
		ran = true
		rows, err := bench.Allocs(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintAllocs(out, rows)
		fmt.Fprintln(out)
	}
	if want("fanout") {
		ran = true
		rows, err := bench.Fanout(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintFanout(out, rows)
		fmt.Fprintln(out)
		records = append(records, bench.FanoutRecords(rows)...)
	}
	if want("send") {
		ran = true
		rows, err := bench.Send(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintSend(out, rows)
		fmt.Fprintln(out)
		records = append(records, bench.SendRecords(rows)...)
	}
	if want("scale") {
		ran = true
		rows, err := bench.Scale(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintScale(out, rows)
		fmt.Fprintln(out)
		records = append(records, bench.ScaleRecords(rows)...)
	}
	if want("mesh") {
		ran = true
		rows, err := bench.Mesh(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintMesh(out, rows)
		fmt.Fprintln(out)
		records = append(records, bench.MeshRecords(rows)...)
	}
	if want("writev") {
		ran = true
		rows, err := bench.Writev(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintWritev(out, rows)
		fmt.Fprintln(out)
		records = append(records, bench.WritevRecords(rows)...)
	}
	if want("evolve") {
		ran = true
		rows, err := bench.Evolve(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintEvolve(out, rows)
		fmt.Fprintln(out)
		records = append(records, bench.EvolveRecords(rows)...)
	}
	if want("evolve-mesh") {
		ran = true
		rows, err := bench.EvolveMesh(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintEvolveMesh(out, rows)
		fmt.Fprintln(out)
		records = append(records, bench.EvolveMeshRecords(rows)...)
	}
	if want("coldstart") {
		ran = true
		rows, err := bench.Coldstart(opts)
		if err != nil {
			return nil, err
		}
		bench.PrintColdstart(out, rows)
		fmt.Fprintln(out)
		records = append(records, bench.ColdstartRecords(rows)...)
	}
	if !ran {
		return nil, fmt.Errorf("unknown figure %q", figs)
	}
	return records, nil
}
