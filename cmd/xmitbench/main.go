// Command xmitbench regenerates the paper's evaluation figures
// (Section 4) on the local machine and prints each as a table.
//
// Usage:
//
//	xmitbench              # all figures
//	xmitbench -fig 8       # one figure (1, 3, 6, 7, 8, or "expansion")
//	xmitbench -quick       # fast, low-precision pass
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"github.com/open-metadata/xmit/internal/bench"
	"github.com/open-metadata/xmit/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", `figure to regenerate: 1, 3, 6, 7, 8, "expansion", "amortization", "ablations", "allocs", "fanout", or "all"`)
	quick := flag.Bool("quick", false, "use fast, low-precision measurement settings")
	metricsAddr := flag.String("metrics", "", "serve the process obs registry at /metrics on this HTTP address while running (empty: disabled)")
	stats := flag.Bool("stats", false, "dump the process obs registry as JSON to stderr after the run")
	flag.Parse()

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Default().Handler())
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "xmitbench: metrics:", err)
			}
		}()
	}

	opts := bench.DefaultOptions()
	if *quick {
		opts = bench.QuickOptions()
	}
	err := run(*fig, opts)
	if *stats {
		obs.Default().WriteJSON(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmitbench:", err)
		os.Exit(1)
	}
}

func run(fig string, opts bench.Options) error {
	out := os.Stdout
	want := func(name string) bool { return fig == "all" || fig == name }
	ran := false

	if want("1") {
		ran = true
		res, err := bench.Fig1(opts)
		if err != nil {
			return err
		}
		bench.PrintFig1(out, res)
		fmt.Fprintln(out)
	}
	if want("3") {
		ran = true
		rows, err := bench.Fig3(opts)
		if err != nil {
			return err
		}
		bench.PrintFig3(out, rows)
		fmt.Fprintln(out)
	}
	if want("6") {
		ran = true
		rows, err := bench.Fig6(opts)
		if err != nil {
			return err
		}
		bench.PrintFig6(out, rows)
		fmt.Fprintln(out)
	}
	if want("7") {
		ran = true
		rows, err := bench.Fig7(opts)
		if err != nil {
			return err
		}
		bench.PrintFig7(out, rows)
		fmt.Fprintln(out)
	}
	if want("8") {
		ran = true
		rows, err := bench.Fig8(opts)
		if err != nil {
			return err
		}
		bench.PrintFig8(out, rows)
		fmt.Fprintln(out)
	}
	if want("expansion") {
		ran = true
		rows, err := bench.Expansion()
		if err != nil {
			return err
		}
		bench.PrintExpansion(out, rows)
		fmt.Fprintln(out)
	}
	if want("amortization") {
		ran = true
		rows, err := bench.Amortization(opts)
		if err != nil {
			return err
		}
		bench.PrintAmortization(out, rows)
		fmt.Fprintln(out)
	}
	if want("ablations") {
		ran = true
		stages, err := bench.AblationRegistrationStages(opts)
		if err != nil {
			return err
		}
		conv, err := bench.AblationConversion(opts)
		if err != nil {
			return err
		}
		fast, err := bench.AblationFastPaths(opts)
		if err != nil {
			return err
		}
		bench.PrintAblations(out, stages, conv, fast)
		fmt.Fprintln(out)
	}
	if want("allocs") {
		ran = true
		rows, err := bench.Allocs(opts)
		if err != nil {
			return err
		}
		bench.PrintAllocs(out, rows)
		fmt.Fprintln(out)
	}
	if want("fanout") {
		ran = true
		rows, err := bench.Fanout(opts)
		if err != nil {
			return err
		}
		bench.PrintFanout(out, rows)
		fmt.Fprintln(out)
	}
	if !ran {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}
