// Command meshsoak drives an exactly-once delivery check across a running
// broker mesh: it publishes a numbered event stream into one broker and
// verifies that steady subscribers attached through *other* brokers receive
// every event exactly once and in order, even while inter-broker links are
// being faulted.  The CI federation job boots three echod daemons, tears
// one link, and fails the build if meshsoak exits nonzero.
//
// Usage:
//
//	meshsoak -home 127.0.0.1:8801 -via 127.0.0.1:8811,127.0.0.1:8821 -n 5000 -subs 2
//
// Every subscriber must observe the contiguous sequence 0..n-1: a gap is
// lost delivery, a repeat or regression is duplicated delivery, and either
// is a mesh correctness failure.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/open-metadata/xmit/internal/echan"
	"github.com/open-metadata/xmit/internal/meta"
	"github.com/open-metadata/xmit/internal/pbio"
)

type event struct {
	Seq int32
	Val float64
}

type subResult struct {
	broker string
	idx    int
	count  int
	err    error
}

func main() {
	home := flag.String("home", "127.0.0.1:8801", "broker the channel is homed on (publish target)")
	via := flag.String("via", "", "comma-separated brokers to subscribe through (default: home only)")
	channel := flag.String("channel", "meshsoak", "channel name")
	n := flag.Int("n", 5000, "events to publish")
	subs := flag.Int("subs", 2, "subscribers per broker")
	queue := flag.Int("queue", 256, "subscriber queue length")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline")
	flag.Parse()

	brokers := []string{*home}
	for _, a := range strings.Split(*via, ",") {
		if a = strings.TrimSpace(a); a != "" {
			brokers = append(brokers, a)
		}
	}

	ctl, err := echan.DialControl(*home)
	if err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	if err := ctl.Create(*channel); err != nil {
		log.Fatalf("meshsoak: creating %s on %s: %v", *channel, *home, err)
	}

	// Attach every subscriber before the first publish: a steady subscriber
	// under the Block policy must then see the complete stream.  Dialing
	// through a remote broker returns only once that broker's link to the
	// home has attached, so there is no startup race to paper over.
	results := make(chan subResult, len(brokers)**subs)
	var wg sync.WaitGroup
	for _, addr := range brokers {
		for i := 0; i < *subs; i++ {
			sc, err := echan.DialSubscriber(addr, *channel, echan.Block, *queue, pbio.NewContext())
			if err != nil {
				log.Fatalf("meshsoak: subscribing via %s: %v", addr, err)
			}
			wg.Add(1)
			go func(addr string, idx int) {
				defer wg.Done()
				results <- receive(sc, addr, idx, *n)
			}(addr, i)
		}
	}

	pub, err := echan.DialPublisher(*home, *channel, pbio.NewContext())
	if err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	bind, err := pub.Context().Bind(mustFormat(pub.Context()), &event{})
	if err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	start := time.Now()
	for i := 0; i < *n; i++ {
		if err := pub.Send(bind, &event{Seq: int32(i), Val: float64(i)}); err != nil {
			log.Fatalf("meshsoak: publish %d: %v", i, err)
		}
	}
	if err := pub.Flush(); err != nil {
		log.Fatalf("meshsoak: flush: %v", err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(*timeout):
		log.Fatalf("meshsoak: timed out after %v waiting for subscribers", *timeout)
	}
	close(results)

	failed := false
	for r := range results {
		status := "ok"
		if r.err != nil {
			status = r.err.Error()
			failed = true
		}
		fmt.Printf("meshsoak: sub %s#%d received %d/%d: %s\n", r.broker, r.idx, r.count, *n, status)
	}
	for _, addr := range brokers {
		c, err := echan.DialControl(addr)
		if err != nil {
			continue
		}
		if line, err := c.MeshLine(); err == nil {
			fmt.Printf("meshsoak: %s: %s\n", addr, line)
		}
		c.Close()
	}
	elapsed := time.Since(start)
	fmt.Printf("meshsoak: %d events to %d subscribers on %d brokers in %v (%.0f events/s)\n",
		*n, len(brokers)**subs, len(brokers), elapsed.Round(time.Millisecond),
		float64(*n)/elapsed.Seconds())
	if failed {
		os.Exit(1)
	}
}

// receive drains one subscriber until it has seen n events, checking the
// sequence is exactly 0..n-1 — no gap, no repeat.
func receive(sc *echan.SubscriberConn, broker string, idx, n int) subResult {
	res := subResult{broker: broker, idx: idx}
	defer sc.Close()
	want := int32(0)
	for res.count < n {
		var ev event
		if _, err := sc.Recv(&ev); err != nil {
			res.err = fmt.Errorf("after %d events: %v", res.count, err)
			return res
		}
		if ev.Seq != want {
			if ev.Seq < want {
				res.err = fmt.Errorf("duplicate delivery: seq %d after %d", ev.Seq, want-1)
			} else {
				res.err = fmt.Errorf("lost delivery: seq jumped %d -> %d", want-1, ev.Seq)
			}
			return res
		}
		want++
		res.count++
	}
	return res
}

func mustFormat(ctx *pbio.Context) *meta.Format {
	f, err := ctx.RegisterFields("MeshSoakEvent", []pbio.IOField{
		{Name: "seq", Type: "integer"},
		{Name: "val", Type: "double"},
	})
	if err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	return f
}
