// Command meshsoak drives an exactly-once delivery check across a running
// broker mesh: it publishes a numbered event stream into one broker and
// verifies that steady subscribers attached through *other* brokers receive
// every event exactly once and in order, even while inter-broker links are
// being faulted.  The CI federation job boots three echod daemons, tears
// one link, and fails the build if meshsoak exits nonzero.
//
// With -evolve k, the publisher also upgrades the event format k times
// mid-stream (each version adds a field), driving the brokers' federated
// schema registry while events flow; brokers must run with a registry
// attached (echod -policy).  With -pin, one extra subscriber per broker
// pins lineage version 1 at SUB time — including through remote brokers,
// where the pinned view resolves from gossiped lineage state — and must
// decode the entire stream projected onto v1, bit-exactly, while the wire
// format evolves under it.
//
// With -restart, meshsoak instead drives the persistence check against a
// broker running with -store: "-restart seed" grows the channel's lineage,
// provokes a compatibility rejection of a deliberately broken head, and
// writes the lineage version IDs plus the rejection's JSON to the -state
// file; after the broker is killed and restarted, "-restart verify" demands
// the full lineage (bit-exact version IDs) from the very first directory
// answer — no gossip round, no remote fetch — re-submits the same broken
// head expecting a byte-identical rejection, and runs a fresh exactly-once
// stream through a v1-pinned subscriber resolved from the recovered lineage.
//
// Usage:
//
//	meshsoak -home 127.0.0.1:8801 -via 127.0.0.1:8811,127.0.0.1:8821 -n 5000 -subs 2 [-evolve 3 -pin]
//	meshsoak -home 127.0.0.1:8801 -restart seed   -state soak.json -evolve 3
//	meshsoak -home 127.0.0.1:8801 -restart verify -state soak.json -n 2000
//
// Every subscriber must observe the contiguous sequence 0..n-1: a gap is
// lost delivery, a repeat or regression is duplicated delivery, and either
// is a mesh correctness failure.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/open-metadata/xmit/internal/echan"
	"github.com/open-metadata/xmit/internal/meta"
	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/platform"
	"github.com/open-metadata/xmit/internal/registry"
)

type event struct {
	Seq int32
	Val float64
}

type subResult struct {
	broker  string
	idx     int
	count   int
	formats int // distinct wire formats decoded (dynamic mode only)
	err     error
}

func main() {
	home := flag.String("home", "127.0.0.1:8801", "broker the channel is homed on (publish target)")
	via := flag.String("via", "", "comma-separated brokers to subscribe through (default: home only)")
	channel := flag.String("channel", "meshsoak", "channel name")
	n := flag.Int("n", 5000, "events to publish")
	subs := flag.Int("subs", 2, "subscribers per broker")
	queue := flag.Int("queue", 256, "subscriber queue length")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline")
	evolve := flag.Int("evolve", 0, "upgrade the event format this many times mid-stream (needs echod -policy)")
	pin := flag.Bool("pin", false, "add a v1-pinned subscriber per broker (needs echod -policy)")
	restart := flag.String("restart", "", "restart-recovery mode: seed (grow lineage, record broken-head rejection) or verify (after broker restart; needs echod -store)")
	stateFile := flag.String("state", "meshsoak-state.json", "state file shared between -restart seed and -restart verify")
	flag.Parse()

	switch *restart {
	case "":
	case "seed":
		runRestartSeed(*home, *channel, *stateFile, *evolve)
		return
	case "verify":
		runRestartVerify(*home, *channel, *stateFile, *n, *queue)
		return
	default:
		log.Fatalf("meshsoak: -restart must be seed or verify, not %q", *restart)
	}

	brokers := []string{*home}
	for _, a := range strings.Split(*via, ",") {
		if a = strings.TrimSpace(a); a != "" {
			brokers = append(brokers, a)
		}
	}

	ctl, err := echan.DialControl(*home)
	if err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	if err := ctl.Create(*channel); err != nil {
		log.Fatalf("meshsoak: creating %s on %s: %v", *channel, *home, err)
	}

	// dynamic mode decodes via records instead of a fixed struct, so the
	// stream can carry several format versions; chain[0] is the v1 every
	// pinned subscriber must keep decoding.
	dynamic := *evolve > 0 || *pin
	chain := soakChain(*evolve + 1)

	// Attach every subscriber before the first publish: a steady subscriber
	// under the Block policy must then see the complete stream.  Dialing
	// through a remote broker returns only once that broker's link to the
	// home has attached, so there is no startup race to paper over.
	results := make(chan subResult, len(brokers)*(*subs+1))
	var wg sync.WaitGroup
	spawn := func(addr string, idx int, sc *echan.SubscriberConn, wantID meta.FormatID) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if dynamic {
				results <- receiveRecords(sc, addr, idx, *n, wantID)
			} else {
				results <- receive(sc, addr, idx, *n)
			}
		}()
	}
	for _, addr := range brokers {
		for i := 0; i < *subs; i++ {
			sc, err := echan.DialSubscriber(addr, *channel, echan.Block, *queue, pbio.NewContext())
			if err != nil {
				log.Fatalf("meshsoak: subscribing via %s: %v", addr, err)
			}
			spawn(addr, i, sc, 0)
		}
	}

	pub, err := echan.DialPublisherConn(*home, *channel, pbio.NewContext())
	if err != nil {
		log.Fatalf("meshsoak: %v", err)
	}

	if *pin {
		// Pinned views resolve against the channel's lineage, so v1 must be
		// registered before a pinned SUB: announce it with a pre-stream probe
		// (seq -1; receivers skip it), then attach one v1-pinned subscriber
		// through every broker.  Attaching through a remote broker exercises
		// the federated path: the view resolves from lineage state pulled off
		// the channel's home, not from anything the proxy has seen.
		probe := pbio.NewRecord(chain[0])
		mustSet(probe, "seq", -1)
		mustSet(probe, "val", 0.0)
		if err := pub.SendRecord(probe); err != nil {
			log.Fatalf("meshsoak: probe: %v", err)
		}
		if err := pub.Flush(); err != nil {
			log.Fatalf("meshsoak: probe flush: %v", err)
		}
		if err := waitLineageHead(*home, *channel, 1, 10*time.Second); err != nil {
			log.Fatalf("meshsoak: %v", err)
		}
		for _, addr := range brokers {
			sc, err := echan.DialSubscriberVersion(addr, *channel, echan.Block, *queue, 1, pbio.NewContext())
			if err != nil {
				log.Fatalf("meshsoak: pinned subscribe via %s: %v", addr, err)
			}
			spawn(addr, *subs, sc, chain[0].ID())
		}
	}

	start := time.Now()
	if dynamic {
		// The publisher upgrades the format every n/len(chain) events,
		// mid-stream, driving the registry while events flow.
		for i := 0; i < *n; i++ {
			f := chain[i*len(chain)/(*n)]
			rec := pbio.NewRecord(f)
			mustSet(rec, "seq", i)
			mustSet(rec, "val", float64(i))
			for _, fl := range f.Fields[2:] {
				mustSet(rec, fl.Name, i)
			}
			if err := pub.SendRecord(rec); err != nil {
				log.Fatalf("meshsoak: publish %d: %v", i, err)
			}
		}
	} else {
		bind, err := pub.Context().Bind(mustFormat(pub.Context()), &event{})
		if err != nil {
			log.Fatalf("meshsoak: %v", err)
		}
		for i := 0; i < *n; i++ {
			if err := pub.Send(bind, &event{Seq: int32(i), Val: float64(i)}); err != nil {
				log.Fatalf("meshsoak: publish %d: %v", i, err)
			}
		}
	}
	if err := pub.Flush(); err != nil {
		log.Fatalf("meshsoak: flush: %v", err)
	}
	if dynamic {
		// A policy rejection arrives asynchronously, after the offending
		// format frame; every version in the chain is additive, so any
		// compat error here is a soak failure.
		if err := pub.Status(200 * time.Millisecond); err != nil {
			log.Fatalf("meshsoak: publisher rejected: %v", err)
		}
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(*timeout):
		log.Fatalf("meshsoak: timed out after %v waiting for subscribers", *timeout)
	}
	close(results)

	failed := false
	for r := range results {
		status := "ok"
		if r.err != nil {
			status = r.err.Error()
			failed = true
		}
		fmt.Printf("meshsoak: sub %s#%d received %d/%d: %s\n", r.broker, r.idx, r.count, *n, status)
	}
	for _, addr := range brokers {
		c, err := echan.DialControl(addr)
		if err != nil {
			continue
		}
		if line, err := c.MeshLine(); err == nil {
			fmt.Printf("meshsoak: %s: %s\n", addr, line)
		}
		c.Close()
	}
	if dynamic {
		// Every broker's registry must converge on the full lineage — the
		// home decided it, gossip replicates it.  Brokers a pinned subscriber
		// attached through converged synchronously at SUB time; the rest get
		// it on a hello round.
		for _, addr := range brokers {
			if err := waitLineageHead(addr, *channel, len(chain), 20*time.Second); err != nil {
				fmt.Printf("meshsoak: lineage convergence on %s: %v\n", addr, err)
				failed = true
				continue
			}
			fmt.Printf("meshsoak: %s: lineage head v%d replicated\n", addr, len(chain))
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("meshsoak: %d events to %d subscribers on %d brokers in %v (%.0f events/s)\n",
		*n, len(brokers)**subs, len(brokers), elapsed.Round(time.Millisecond),
		float64(*n)/elapsed.Seconds())
	if failed {
		os.Exit(1)
	}
}

// receive drains one subscriber until it has seen n events, checking the
// sequence is exactly 0..n-1 — no gap, no repeat.
func receive(sc *echan.SubscriberConn, broker string, idx, n int) subResult {
	res := subResult{broker: broker, idx: idx}
	defer sc.Close()
	want := int32(0)
	for res.count < n {
		var ev event
		if _, err := sc.Recv(&ev); err != nil {
			res.err = fmt.Errorf("after %d events: %v", res.count, err)
			return res
		}
		if ev.Seq != want {
			if ev.Seq < want {
				res.err = fmt.Errorf("duplicate delivery: seq %d after %d", ev.Seq, want-1)
			} else {
				res.err = fmt.Errorf("lost delivery: seq jumped %d -> %d", want-1, ev.Seq)
			}
			return res
		}
		want++
		res.count++
	}
	return res
}

// receiveRecords drains one subscriber in dynamic (record) mode until it
// has seen n events, checking the sequence is exactly 0..n-1 and every
// event's val round-trips.  A negative seq is the pre-stream lineage probe
// and is skipped.  wantID, when nonzero, asserts every record decodes
// under that one format — the pinned-view contract: the wire evolves, the
// subscriber's view does not.
func receiveRecords(sc *echan.SubscriberConn, broker string, idx, n int, wantID meta.FormatID) subResult {
	res := subResult{broker: broker, idx: idx}
	defer sc.Close()
	seen := make(map[meta.FormatID]bool)
	want := int64(0)
	for res.count < n {
		rec, err := sc.RecvRecord()
		if err != nil {
			res.err = fmt.Errorf("after %d events: %v", res.count, err)
			return res
		}
		sv, ok := rec.Get("seq")
		if !ok {
			res.err = fmt.Errorf("record %d has no seq", res.count)
			return res
		}
		seq := sv.(int64)
		if seq < 0 {
			continue
		}
		if seq != want {
			if seq < want {
				res.err = fmt.Errorf("duplicate delivery: seq %d after %d", seq, want-1)
			} else {
				res.err = fmt.Errorf("lost delivery: seq jumped %d -> %d", want-1, seq)
			}
			return res
		}
		if v, ok := rec.Get("val"); !ok || v.(float64) != float64(seq) {
			res.err = fmt.Errorf("seq %d: val = %v, want %v", seq, v, float64(seq))
			return res
		}
		id := rec.Format().ID()
		if wantID != 0 && id != wantID {
			res.err = fmt.Errorf("seq %d decoded under %s, want pinned %s", seq, id, wantID)
			return res
		}
		seen[id] = true
		want++
		res.count++
	}
	res.formats = len(seen)
	return res
}

// soakChain builds the evolving event lineage: v1 is {seq, val}, each later
// version adds one integer field.  Every step is additive, so the chain
// satisfies the backward policy the CI federation daemons run under.
func soakChain(k int) []*meta.Format {
	defs := []meta.FieldDef{
		{Name: "seq", Kind: meta.Integer, Class: platform.LongLong},
		{Name: "val", Kind: meta.Float, Class: platform.Double},
	}
	chain := make([]*meta.Format, 0, k)
	for i := 0; i < k; i++ {
		if i > 0 {
			defs = append(defs, meta.FieldDef{
				Name: fmt.Sprintf("f%d", i), Kind: meta.Integer, Class: platform.Int,
			})
		}
		f, err := meta.Build("MeshSoakEvent", platform.X8664, defs)
		if err != nil {
			log.Fatalf("meshsoak: building format v%d: %v", i+1, err)
		}
		chain = append(chain, f)
	}
	return chain
}

func mustSet(rec *pbio.Record, name string, v any) {
	if err := rec.Set(name, v); err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
}

// waitLineageHead polls a broker until the channel's lineage reports at
// least head versions — how the soak observes registration (on the home)
// and gossip replication (on every other broker).
func waitLineageHead(addr, channel string, head int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		c, err := echan.DialControl(addr)
		if err != nil {
			last = err
		} else {
			info, err := c.Lineage(channel)
			c.Close()
			if err == nil && len(info.VersionIDs) >= head {
				return nil
			}
			if err != nil {
				last = err
			} else {
				last = fmt.Errorf("lineage head v%d, want v%d", len(info.VersionIDs), head)
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("waiting for %s lineage head v%d on %s: %v", channel, head, addr, last)
}

// restartState is what "-restart seed" hands "-restart verify" across the
// broker kill: the lineage the broker must recover from disk (version IDs,
// oldest first) and the exact JSON of the compatibility error that rejected
// the broken head — verify demands both back bit-for-bit.
type restartState struct {
	Channel  string   `json:"channel"`
	Versions []string `json:"versions"`
	Compat   string   `json:"compat"`
}

// brokenHead builds the deliberately incompatible evolution: same fields as
// v1 but val's type changed from double to int.  A type change violates
// every policy above none, and both phases rebuild it deterministically so
// the broker is shown the identical bytes before and after its restart.
func brokenHead() *meta.Format {
	f, err := meta.Build("MeshSoakEvent", platform.X8664, []meta.FieldDef{
		{Name: "seq", Kind: meta.Integer, Class: platform.LongLong},
		{Name: "val", Kind: meta.Integer, Class: platform.Int},
	})
	if err != nil {
		log.Fatalf("meshsoak: building broken head: %v", err)
	}
	return f
}

// rejectBrokenHead publishes the broken head on the channel and returns the
// JSON of the *registry.CompatError the broker answers with.  Anything but
// a compat rejection is fatal — acceptance would mean the lineage history
// (or its policy) is gone.
func rejectBrokenHead(home, channel string) string {
	pub, err := echan.DialPublisherConn(home, channel, pbio.NewContext())
	if err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	defer pub.Close()
	rec := pbio.NewRecord(brokenHead())
	mustSet(rec, "seq", -1)
	mustSet(rec, "val", 0)
	if err := pub.SendRecord(rec); err != nil {
		log.Fatalf("meshsoak: publishing broken head: %v", err)
	}
	if err := pub.Flush(); err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	err = pub.Status(5 * time.Second)
	var ce *registry.CompatError
	if !errors.As(err, &ce) {
		log.Fatalf("meshsoak: broken head not rejected with a compat error (got %v)", err)
	}
	body, err := json.Marshal(ce)
	if err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	return string(body)
}

// runRestartSeed drives a -store broker through the state the restart check
// depends on: an evolved lineage, a policy decision rejecting a broken
// head.  It records the resulting lineage and rejection in the state file.
func runRestartSeed(home, channel, stateFile string, evolve int) {
	if evolve < 1 {
		evolve = 2
	}
	ctl, err := echan.DialControl(home)
	if err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	defer ctl.Close()
	if err := ctl.Create(channel); err != nil {
		log.Fatalf("meshsoak: creating %s on %s: %v", channel, home, err)
	}

	chain := soakChain(evolve + 1)
	pub, err := echan.DialPublisherConn(home, channel, pbio.NewContext())
	if err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	for _, f := range chain {
		rec := pbio.NewRecord(f)
		mustSet(rec, "seq", -1)
		mustSet(rec, "val", 0.0)
		for _, fl := range f.Fields[2:] {
			mustSet(rec, fl.Name, 0)
		}
		if err := pub.SendRecord(rec); err != nil {
			log.Fatalf("meshsoak: announcing v%d: %v", len(chain), err)
		}
	}
	if err := pub.Flush(); err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	if err := pub.Status(500 * time.Millisecond); err != nil {
		log.Fatalf("meshsoak: seeding lineage: %v", err)
	}
	pub.Close()
	if err := waitLineageHead(home, channel, len(chain), 10*time.Second); err != nil {
		log.Fatalf("meshsoak: %v", err)
	}

	info, err := ctl.Lineage(channel)
	if err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	st := restartState{Channel: channel}
	for _, id := range info.VersionIDs {
		st.Versions = append(st.Versions, meta.FormatID(id).String())
	}
	st.Compat = rejectBrokenHead(home, channel)

	buf, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	if err := os.WriteFile(stateFile, buf, 0o644); err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	fmt.Printf("meshsoak: seeded lineage %s to v%d, broken head rejected; state in %s\n",
		channel, len(st.Versions), stateFile)
}

// runRestartVerify checks a restarted -store broker against the seeded
// state: the full lineage must come back in the broker's *first* directory
// answer (the peers are down and nothing was re-published, so only local
// disk can supply it), the broken head must be re-rejected byte-identically,
// and a v1-pinned subscriber resolved from the recovered lineage must see a
// fresh stream exactly once.
func runRestartVerify(home, channel, stateFile string, n, queue int) {
	buf, err := os.ReadFile(stateFile)
	if err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	var st restartState
	if err := json.Unmarshal(buf, &st); err != nil {
		log.Fatalf("meshsoak: reading %s: %v", stateFile, err)
	}
	if st.Channel != "" {
		channel = st.Channel
	}

	// Retry only the dial (the broker may still be binding its port); the
	// first successful lineage answer is judged as-is.  Incomplete means
	// recovery failed — with no peers and no republish there is no second
	// chance that would not be cheating.
	var info echan.LineageInfo
	deadline := time.Now().Add(10 * time.Second)
	for {
		ctl, err := echan.DialControl(home)
		if err == nil {
			info, err = ctl.Lineage(channel)
			ctl.Close()
			if err != nil {
				log.Fatalf("meshsoak: restarted broker has no lineage %s: %v", channel, err)
			}
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("meshsoak: dialing restarted broker %s: %v", home, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if len(info.VersionIDs) != len(st.Versions) {
		log.Fatalf("meshsoak: recovered lineage has %d versions, want %d", len(info.VersionIDs), len(st.Versions))
	}
	for i, id := range info.VersionIDs {
		if meta.FormatID(id).String() != st.Versions[i] {
			log.Fatalf("meshsoak: recovered v%d = %s, want %s", i+1, meta.FormatID(id), st.Versions[i])
		}
	}
	fmt.Printf("meshsoak: restarted broker served all %d lineage versions from disk, bit-exact\n", len(st.Versions))

	got := rejectBrokenHead(home, channel)
	if got != st.Compat {
		log.Fatalf("meshsoak: rejection drifted across restart:\n  before: %s\n  after:  %s", st.Compat, got)
	}
	fmt.Printf("meshsoak: broken head re-rejected with byte-identical compat error\n")

	// Fresh exactly-once stream through a v1-pinned subscriber: the pinned
	// view resolves from the recovered lineage, the wire carries the head
	// format, and the subscriber must decode 0..n-1 projected onto v1.
	chain := soakChain(len(st.Versions))
	head := chain[len(chain)-1]
	sc, err := echan.DialSubscriberVersion(home, channel, echan.Block, queue, 1, pbio.NewContext())
	if err != nil {
		log.Fatalf("meshsoak: pinned subscribe: %v", err)
	}
	pub, err := echan.DialPublisherConn(home, channel, pbio.NewContext())
	if err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	defer pub.Close()
	done := make(chan subResult, 1)
	go func() { done <- receiveRecords(sc, home, 0, n, chain[0].ID()) }()
	for i := 0; i < n; i++ {
		rec := pbio.NewRecord(head)
		mustSet(rec, "seq", i)
		mustSet(rec, "val", float64(i))
		for _, fl := range head.Fields[2:] {
			mustSet(rec, fl.Name, i)
		}
		if err := pub.SendRecord(rec); err != nil {
			log.Fatalf("meshsoak: publish %d: %v", i, err)
		}
	}
	if err := pub.Flush(); err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	if err := pub.Status(200 * time.Millisecond); err != nil {
		log.Fatalf("meshsoak: publisher rejected after restart: %v", err)
	}
	select {
	case r := <-done:
		if r.err != nil {
			log.Fatalf("meshsoak: pinned subscriber after restart: %v", r.err)
		}
		fmt.Printf("meshsoak: pinned subscriber decoded %d/%d events exactly once under recovered v1\n", r.count, n)
	case <-time.After(60 * time.Second):
		log.Fatalf("meshsoak: timed out waiting for pinned subscriber")
	}
	fmt.Printf("meshsoak: restart recovery verified\n")
}

func mustFormat(ctx *pbio.Context) *meta.Format {
	f, err := ctx.RegisterFields("MeshSoakEvent", []pbio.IOField{
		{Name: "seq", Type: "integer"},
		{Name: "val", Type: "double"},
	})
	if err != nil {
		log.Fatalf("meshsoak: %v", err)
	}
	return f
}
