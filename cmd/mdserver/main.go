// Command mdserver hosts XML metadata documents over HTTP — the role the
// Apache server plays in the paper's experiments.  It serves *.xsd/*.xml
// files from a directory, with the Hydrology application's schema document
// published at /hydrology.xsd and the quickstart example's Reading schema
// at /quickstart.xsd by default so a demo works out of the box.
//
// Operational metrics (request, 304-revalidation, and error counts, plus
// request latency) are served at /metrics as plain text, or JSON with
// ?format=json.
//
// Usage:
//
//	mdserver -addr :8700 -dir ./schemas
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/open-metadata/xmit/internal/discovery"
	"github.com/open-metadata/xmit/internal/hydro"
	"github.com/open-metadata/xmit/internal/obs"
)

// quickstartSchema is the Reading format used by examples/quickstart, so
// that `quickstart -url http://<mdserver>/quickstart.xsd` exercises the
// whole remote-discovery path against this server.
const quickstartSchema = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Reading">
    <xsd:element name="station" type="xsd:string" />
    <xsd:element name="timestamp" type="xsd:unsignedLong" />
    <xsd:element name="temperature" type="xsd:float" />
    <xsd:element name="samples" type="xsd:double" minOccurs="0" maxOccurs="*"
        dimensionPlacement="before" dimensionName="nsamples" />
  </xsd:complexType>
</xsd:schema>`

// statusWriter captures the response status for the counting middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// counted wraps a document handler with the server's traffic metrics.
func counted(reg *obs.Registry, h http.Handler) http.Handler {
	requests := reg.Counter("mdserver_requests_total")
	full := reg.Counter("mdserver_full_responses_total")
	notModified := reg.Counter("mdserver_not_modified_total")
	errors := reg.Counter("mdserver_errors_total")
	bytes := reg.Counter("mdserver_bytes_sent_total")
	latency := reg.Histogram("mdserver_request_ns")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)
		latency.Observe(time.Since(start))
		requests.Inc()
		bytes.Add(sw.bytes)
		switch {
		case sw.status == http.StatusNotModified:
			notModified.Inc()
		case sw.status >= 400:
			errors.Inc()
		default:
			full.Inc()
		}
	})
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8700", "listen address")
	dir := flag.String("dir", "", "directory of schema documents to serve (optional)")
	flag.Parse()

	metrics := obs.Default()
	mux := http.NewServeMux()
	pub := discovery.NewDocServer()
	pub.Publish("hydrology.xsd", []byte(hydro.SchemaDocument))
	pub.Publish("quickstart.xsd", []byte(quickstartSchema))
	mux.Handle("/hydrology.xsd", counted(metrics, pub))
	mux.Handle("/quickstart.xsd", counted(metrics, pub))
	if *dir != "" {
		if _, err := os.Stat(*dir); err != nil {
			log.Fatalf("mdserver: %v", err)
		}
		mux.Handle("/", counted(metrics, discovery.DirHandler(*dir)))
	} else {
		mux.Handle("/", counted(metrics, pub))
	}
	mux.Handle("/metrics", metrics.Handler())
	obs.PublishExpvar("mdserver", metrics)

	fmt.Printf("mdserver: serving metadata on http://%s/ (try /hydrology.xsd; metrics at /metrics)\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
