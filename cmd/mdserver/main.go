// Command mdserver hosts XML metadata documents over HTTP — the role the
// Apache server plays in the paper's experiments.  It serves *.xsd/*.xml
// files from a directory, with the Hydrology application's schema document
// published at /hydrology.xsd by default so a demo works out of the box.
//
// Usage:
//
//	mdserver -addr :8700 -dir ./schemas
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"github.com/open-metadata/xmit/internal/discovery"
	"github.com/open-metadata/xmit/internal/hydro"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8700", "listen address")
	dir := flag.String("dir", "", "directory of schema documents to serve (optional)")
	flag.Parse()

	mux := http.NewServeMux()
	pub := discovery.NewDocServer()
	pub.Publish("hydrology.xsd", []byte(hydro.SchemaDocument))
	mux.Handle("/hydrology.xsd", pub)
	if *dir != "" {
		if _, err := os.Stat(*dir); err != nil {
			log.Fatalf("mdserver: %v", err)
		}
		mux.Handle("/", discovery.DirHandler(*dir))
	} else {
		mux.Handle("/", pub)
	}

	fmt.Printf("mdserver: serving metadata on http://%s/ (try /hydrology.xsd)\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}
