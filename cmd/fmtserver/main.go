// Command fmtserver runs a stand-alone format server: the directory service
// that maps content-derived format IDs to format metadata, enabling the
// out-of-band discovery mode (see internal/fmtserver for the protocol).
//
// With -metrics, an HTTP endpoint serves the registry's registration and
// resolution counters at /metrics (plain text, or JSON with ?format=json).
//
// Usage:
//
//	fmtserver -addr 127.0.0.1:8701 -metrics 127.0.0.1:8702
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"

	"github.com/open-metadata/xmit/internal/fmtserver"
	"github.com/open-metadata/xmit/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8701", "listen address")
	metricsAddr := flag.String("metrics", "", "serve /metrics on this HTTP address (empty: disabled)")
	flag.Parse()

	reg := fmtserver.NewRegistry()
	metrics := obs.Default()
	reg.PublishMetrics(metrics, "fmtserver")
	obs.PublishExpvar("fmtserver", metrics)

	srv := fmtserver.NewServer(reg)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("fmtserver: %v", err)
	}
	fmt.Printf("fmtserver: listening on %s\n", bound)

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		go func() {
			fmt.Printf("fmtserver: metrics on http://%s/metrics\n", *metricsAddr)
			log.Fatal(http.ListenAndServe(*metricsAddr, mux))
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("fmtserver: shutting down")
	srv.Close()
}
