// Command fmtserver runs a stand-alone format server: the directory service
// that maps content-derived format IDs to format metadata, enabling the
// out-of-band discovery mode (see internal/fmtserver for the protocol).
//
// Usage:
//
//	fmtserver -addr 127.0.0.1:8701
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"github.com/open-metadata/xmit/internal/fmtserver"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8701", "listen address")
	flag.Parse()

	srv := fmtserver.NewServer(nil)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("fmtserver: %v", err)
	}
	fmt.Printf("fmtserver: listening on %s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("fmtserver: shutting down")
	srv.Close()
}
