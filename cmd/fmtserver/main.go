// Command fmtserver runs a stand-alone format server: the directory service
// that maps content-derived format IDs to format metadata, enabling the
// out-of-band discovery mode (see internal/fmtserver for the protocol).
//
// With -metrics, an HTTP endpoint serves the registry's registration and
// resolution counters at /metrics (plain text, or JSON with ?format=json).
//
// With -policy, the server tracks format lineages: registrations of the
// same format name form a versioned history checked against the named
// default compatibility policy, queryable over the lineage wire ops, and
// (with -metrics) served at /.well-known/xmit-lineages for discovery.
//
// With -store, the catalogue persists: registered formats are written
// through to a content-addressed blob store and replayed from local disk
// at startup, so a restarted server answers every pre-restart lookup
// without a single re-registration; with -policy too, lineage histories
// and policy decisions are journaled and recovered the same way.
//
// Usage:
//
//	fmtserver -addr 127.0.0.1:8701 -metrics 127.0.0.1:8702 [-policy backward] [-store /var/lib/fmtserver]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"

	"github.com/open-metadata/xmit/internal/discovery"
	"github.com/open-metadata/xmit/internal/fmtserver"
	"github.com/open-metadata/xmit/internal/obs"
	"github.com/open-metadata/xmit/internal/registry"
	"github.com/open-metadata/xmit/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8701", "listen address")
	metricsAddr := flag.String("metrics", "", "serve /metrics on this HTTP address (empty: disabled)")
	policy := flag.String("policy", "", "track format lineages with this default compatibility policy (none, backward, forward, full, *_transitive; empty: no lineages)")
	storeDir := flag.String("store", "", "persist the format catalogue (and lineages, with -policy) in this directory")
	flag.Parse()

	reg := fmtserver.NewRegistry()
	metrics := obs.Default()
	reg.PublishMetrics(metrics, "fmtserver")
	obs.PublishExpvar("fmtserver", metrics)

	var schemaReg *registry.Registry
	if *policy != "" {
		p, err := registry.ParsePolicy(*policy)
		if err != nil {
			log.Fatalf("fmtserver: %v", err)
		}
		schemaReg = registry.New(registry.WithDefaultPolicy(p))
		reg.AttachLineages(schemaReg)
		fmt.Printf("fmtserver: tracking lineages (default policy %s)\n", *policy)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, store.WithMetricsRegistry(metrics))
		if err != nil {
			log.Fatalf("fmtserver: %v", err)
		}
		if schemaReg != nil {
			// Lineage state first: recovery rebuilds histories and policies
			// through the adoption path, so the catalogue warm-up below
			// re-registers against the recovered (not empty) lineages.
			rs, err := st.PersistRegistry(schemaReg)
			if err != nil {
				log.Fatalf("fmtserver: recovering store %s: %v", *storeDir, err)
			}
			fmt.Printf("fmtserver: store %s: recovered %d lineages, %d versions\n", *storeDir, rs.Lineages, rs.Versions)
		}
		n, err := reg.WarmFromStore(st)
		if err != nil {
			log.Fatalf("fmtserver: warming from store %s: %v", *storeDir, err)
		}
		reg.AttachStore(st)
		fmt.Printf("fmtserver: warmed %d formats from %s\n", n, *storeDir)
	}

	srv := fmtserver.NewServer(reg)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("fmtserver: %v", err)
	}
	fmt.Printf("fmtserver: listening on %s\n", bound)

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		if schemaReg != nil {
			mux.Handle(discovery.WellKnownLineagePath, discovery.LineageHandler(func() []discovery.LineageDoc {
				return discovery.SnapshotLineages(schemaReg)
			}))
			fmt.Printf("fmtserver: lineages on http://%s%s\n", *metricsAddr, discovery.WellKnownLineagePath)
		}
		go func() {
			fmt.Printf("fmtserver: metrics on http://%s/metrics\n", *metricsAddr)
			log.Fatal(http.ListenAndServe(*metricsAddr, mux))
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("fmtserver: shutting down")
	srv.Close()
	if st != nil {
		if schemaReg != nil {
			if err := st.Snapshot(schemaReg); err != nil {
				log.Printf("fmtserver: snapshotting store: %v", err)
			}
		}
		if err := st.Close(); err != nil {
			log.Printf("fmtserver: closing store: %v", err)
		}
	}
}
