// Command fmtserver runs a stand-alone format server: the directory service
// that maps content-derived format IDs to format metadata, enabling the
// out-of-band discovery mode (see internal/fmtserver for the protocol).
//
// With -metrics, an HTTP endpoint serves the registry's registration and
// resolution counters at /metrics (plain text, or JSON with ?format=json).
//
// With -policy, the server tracks format lineages: registrations of the
// same format name form a versioned history checked against the named
// default compatibility policy, queryable over the lineage wire ops, and
// (with -metrics) served at /.well-known/xmit-lineages for discovery.
//
// Usage:
//
//	fmtserver -addr 127.0.0.1:8701 -metrics 127.0.0.1:8702 [-policy backward]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"

	"github.com/open-metadata/xmit/internal/discovery"
	"github.com/open-metadata/xmit/internal/fmtserver"
	"github.com/open-metadata/xmit/internal/obs"
	"github.com/open-metadata/xmit/internal/registry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8701", "listen address")
	metricsAddr := flag.String("metrics", "", "serve /metrics on this HTTP address (empty: disabled)")
	policy := flag.String("policy", "", "track format lineages with this default compatibility policy (none, backward, forward, full, *_transitive; empty: no lineages)")
	flag.Parse()

	reg := fmtserver.NewRegistry()
	metrics := obs.Default()
	reg.PublishMetrics(metrics, "fmtserver")
	obs.PublishExpvar("fmtserver", metrics)

	var schemaReg *registry.Registry
	if *policy != "" {
		p, err := registry.ParsePolicy(*policy)
		if err != nil {
			log.Fatalf("fmtserver: %v", err)
		}
		schemaReg = registry.New(registry.WithDefaultPolicy(p))
		reg.AttachLineages(schemaReg)
		fmt.Printf("fmtserver: tracking lineages (default policy %s)\n", *policy)
	}

	srv := fmtserver.NewServer(reg)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("fmtserver: %v", err)
	}
	fmt.Printf("fmtserver: listening on %s\n", bound)

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		if schemaReg != nil {
			mux.Handle(discovery.WellKnownLineagePath, discovery.LineageHandler(func() []discovery.LineageDoc {
				return discovery.SnapshotLineages(schemaReg)
			}))
			fmt.Printf("fmtserver: lineages on http://%s%s\n", *metricsAddr, discovery.WellKnownLineagePath)
		}
		go func() {
			fmt.Printf("fmtserver: metrics on http://%s/metrics\n", *metricsAddr)
			log.Fatal(http.ListenAndServe(*metricsAddr, mux))
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("fmtserver: shutting down")
	srv.Close()
}
