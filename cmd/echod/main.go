// Command echod runs the event-channel broker daemon: named pub/sub
// channels over TCP with per-subscriber backpressure policies, in-band or
// format-server metadata distribution, and derived channels with
// server-side filters (see internal/echan for the protocol).
//
// With -metrics, an HTTP endpoint serves per-channel depth gauges, fan-out
// latency histograms, and drop counters at /metrics (plain text, or JSON
// with ?format=json).  With -fmtserver, formats published on any channel
// are registered with a format server, and unknown format IDs arriving
// from out-of-band publishers are resolved from it.
//
// With -peer, the broker federates: it joins a mesh of echod processes
// where each channel is homed on one broker and other brokers mirror it
// over inter-broker links, so a subscriber anywhere sees a channel
// published anywhere.  Peers are given as broker addresses or as http(s)
// URLs of another broker's well-known mesh document; -mesh-listen serves
// this broker's own document for others to bootstrap from.
//
// With -unix, the broker also listens on a unix-domain socket — the
// same-host fast lane: local subscribers dialing the socket path receive
// the broker's vectored writes without the TCP stack in between.  Clients
// select the lane by address form alone (a path instead of host:port).
//
// With -policy, the broker attaches a schema registry: formats announced
// on a channel form a versioned lineage, evolutions are checked against
// the named default compatibility policy (none, backward, forward, full,
// or a *_transitive variant) at publish time, and subscribers may pin a
// lineage version at SUB time ("SUB ch version=N") to keep decoding that
// view while publishers evolve the format.  The LINEAGE and POLICY control
// verbs inspect and adjust lineages; with -metrics the lineage catalogue
// is also served at /.well-known/xmit-lineages for discovery, canonical
// format bodies included.
//
// On a federated broker the registry itself federates: lineage state
// gossips between peers (the LINEAGES control verb ships the well-known
// document incrementally on the HELLO rounds), every policy decision
// resolves at the channel's home broker — a registration admitted anywhere
// is admitted everywhere, and a rejection travels back to the remote
// publisher as the same typed compat error — and a version-pinned
// subscriber can attach or reattach through any broker in the mesh: the
// negotiated announcement replays from gossiped lineage state and
// "after=<gen>" resume positions carry across brokers because proxies
// re-publish under home generation numbers.  An http(s) -peer bootstrap
// also adopts the peer's lineage document up front.
//
// With -store (requires -policy), registry state persists across restarts:
// every lineage append and policy change is journaled to the directory
// (format bodies in a content-addressed blob store, decisions in an
// append-only journal with periodic snapshots), and a restarted broker
// recovers its full lineage histories, version numbering, and policy
// decisions from local disk before serving — no peer gossip or remote
// fetch needed, and the same incompatible head is re-rejected with the
// same typed compat error.  Fetched discovery documents are persisted
// too, so cold-start warming skips remote fetches entirely.
//
// Usage:
//
//	echod -addr 127.0.0.1:8801 -metrics 127.0.0.1:8802 [-fmtserver 127.0.0.1:8701] [-queue 64] [-shards N]
//	      [-unix /run/echod.sock] [-policy backward] [-store /var/lib/echod]
//	      [-peer host2:8801,http://host3:8803] [-mesh-listen 127.0.0.1:8803] [-advertise host1:8801] [-retain N]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"github.com/open-metadata/xmit/internal/discovery"
	"github.com/open-metadata/xmit/internal/echan"
	"github.com/open-metadata/xmit/internal/fmtserver"
	"github.com/open-metadata/xmit/internal/meta"
	"github.com/open-metadata/xmit/internal/obs"
	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/registry"
	"github.com/open-metadata/xmit/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8801", "listen address")
	unixPath := flag.String("unix", "", "also listen on this unix socket path (same-host fast lane)")
	metricsAddr := flag.String("metrics", "", "serve /metrics on this HTTP address (empty: disabled)")
	fmtsrvAddr := flag.String("fmtserver", "", "format server address for out-of-band metadata (empty: in-band only)")
	queue := flag.Int("queue", 64, "default per-subscriber queue length")
	shards := flag.Int("shards", 0, "default fan-out shards per channel (0: GOMAXPROCS; 1: single-worker fan-out)")
	peers := flag.String("peer", "", "comma-separated peer brokers: host:port, or http(s) URL of a peer's mesh document")
	meshListen := flag.String("mesh-listen", "", "serve this broker's mesh document on this HTTP address (enables federation)")
	advertise := flag.String("advertise", "", "mesh address peers dial this broker on (default: the bound -addr)")
	retain := flag.Int("retain", -1, "events retained per channel for link resume (-1: 1024 when federated, else 0)")
	policy := flag.String("policy", "", "attach a schema registry with this default compatibility policy (none, backward, forward, full, *_transitive; empty: no registry)")
	storeDir := flag.String("store", "", "persist registry state and fetched documents in this directory (requires -policy; survives restarts)")
	flag.Parse()

	federated := *peers != "" || *meshListen != "" || *advertise != ""
	if *retain < 0 {
		if federated {
			*retain = 1024
		} else {
			*retain = 0
		}
	}

	metrics := obs.Default()
	obs.PublishExpvar("echod", metrics)

	opts := []echan.BrokerOption{
		echan.WithRegistry(metrics),
		echan.WithDefaultQueue(*queue),
	}
	if *shards > 0 {
		opts = append(opts, echan.WithDefaultShards(*shards))
	}
	if *retain > 0 {
		opts = append(opts, echan.WithDefaultRetain(*retain))
	}
	if *fmtsrvAddr != "" {
		fc := fmtserver.NewClient(*fmtsrvAddr)
		defer fc.Close()
		opts = append(opts,
			echan.WithContext(pbio.NewContext(pbio.WithResolver(fc))),
			echan.WithFormatRegistrar(func(f *meta.Format) error {
				_, err := fc.Register(f)
				return err
			}),
		)
	}
	var schemaReg *registry.Registry
	if *policy != "" {
		p, err := registry.ParsePolicy(*policy)
		if err != nil {
			log.Fatalf("echod: %v", err)
		}
		schemaReg = registry.New(registry.WithDefaultPolicy(p))
		opts = append(opts, echan.WithSchemaRegistry(schemaReg))
	}
	var st *store.Store
	if *storeDir != "" {
		if schemaReg == nil {
			log.Fatalf("echod: -store requires -policy (the store persists registry state)")
		}
		var err error
		st, err = store.Open(*storeDir, store.WithMetricsRegistry(metrics))
		if err != nil {
			log.Fatalf("echod: %v", err)
		}
		// Recover persisted lineage state before the broker serves anything,
		// then journal every subsequent append and policy change.
		rs, err := st.PersistRegistry(schemaReg)
		if err != nil {
			log.Fatalf("echod: recovering store %s: %v", *storeDir, err)
		}
		fmt.Printf("echod: store %s: recovered %d lineages, %d versions (%d snapshot, %d journal records", *storeDir, rs.Lineages, rs.Versions, rs.SnapshotVersions, rs.JournalRecords)
		if rs.TruncatedTail {
			fmt.Printf(", torn journal tail truncated")
		}
		if rs.SnapshotFallback {
			fmt.Printf(", snapshot fallback")
		}
		fmt.Println(")")
	}
	broker := echan.NewBroker(opts...)

	srv := echan.NewServer(broker)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("echod: %v", err)
	}
	fmt.Printf("echod: listening on %s\n", bound)
	if *unixPath != "" {
		if _, err := srv.ListenUnix(*unixPath); err != nil {
			log.Fatalf("echod: %v", err)
		}
		fmt.Printf("echod: unix fast lane on %s\n", *unixPath)
	}
	if *fmtsrvAddr != "" {
		fmt.Printf("echod: registering formats with %s\n", *fmtsrvAddr)
	}
	if schemaReg != nil {
		fmt.Printf("echod: schema registry attached (default policy %s)\n", *policy)
	}

	// The lineage catalogue is served with full canonical format bodies, so
	// a peer (or a directory server) fetching the document can adopt the
	// formats themselves, not just the version IDs — the same shape the
	// mesh gossips over LINEAGES.
	lineageHandler := func() http.Handler {
		return discovery.LineageHandler(func() []discovery.LineageDoc {
			return discovery.SnapshotLineagesFull(schemaReg)
		})
	}

	var mesh *echan.Mesh
	if federated {
		self := *advertise
		if self == "" {
			self = bound
		}
		mesh = echan.NewMesh(broker, self)
		var ropts []discovery.RepoOption
		if st != nil {
			ropts = append(ropts, discovery.WithDocStore(st))
		}
		repo := discovery.NewRepository(ropts...)
		if st != nil {
			if n := repo.WarmFromStore(); n > 0 {
				fmt.Printf("echod: warmed %d discovery documents from store\n", n)
			}
		}
		for _, p := range strings.Split(*peers, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			if strings.HasPrefix(p, "http://") || strings.HasPrefix(p, "https://") {
				doc, err := repo.FetchMesh(p)
				if err != nil {
					log.Fatalf("echod: bootstrapping mesh from %s: %v", p, err)
				}
				mesh.AddPeer(doc.Self)
				for _, a := range doc.Peers {
					mesh.AddPeer(a)
				}
				// A fresh broker joining an established mesh adopts the
				// peer's lineage state up front (best-effort: gossip
				// converges it regardless), so pinned subscribers attaching
				// here resolve views before the first HELLO round lands.
				if schemaReg != nil {
					u := strings.TrimSuffix(strings.TrimSuffix(p, discovery.WellKnownMeshPath), "/") + discovery.WellKnownLineagePath
					if docs, err := repo.FetchLineages(u); err == nil {
						if n, err := discovery.MergeLineages(schemaReg, docs, doc.Self); err == nil && n > 0 {
							fmt.Printf("echod: adopted %d lineage versions from %s\n", n, u)
						}
					}
				}
				continue
			}
			mesh.AddPeer(p)
		}
		srv.AttachMesh(mesh)
		mesh.Start()
		fmt.Printf("echod: federated as %s (%d peers, retain %d)\n", self, len(mesh.Peers()), *retain)
		if *meshListen != "" {
			mux := http.NewServeMux()
			mux.Handle(discovery.WellKnownMeshPath, discovery.MeshHandler(func() discovery.MeshDoc {
				return discovery.MeshDoc{Self: mesh.Self(), Peers: mesh.Peers()}
			}))
			if schemaReg != nil {
				// The mesh bootstrap endpoint also serves the lineages, so
				// joining brokers reach both documents through one address.
				mux.Handle(discovery.WellKnownLineagePath, lineageHandler())
			}
			go func() {
				fmt.Printf("echod: mesh document on http://%s%s\n", *meshListen, discovery.WellKnownMeshPath)
				log.Fatal(http.ListenAndServe(*meshListen, mux))
			}()
		}
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		if schemaReg != nil {
			mux.Handle(discovery.WellKnownLineagePath, lineageHandler())
			fmt.Printf("echod: lineages on http://%s%s\n", *metricsAddr, discovery.WellKnownLineagePath)
		}
		go func() {
			fmt.Printf("echod: metrics on http://%s/metrics\n", *metricsAddr)
			log.Fatal(http.ListenAndServe(*metricsAddr, mux))
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("echod: shutting down")
	if mesh != nil {
		mesh.Close()
	}
	srv.Close()
	broker.Close()
	if st != nil {
		// Snapshot the registry and compact the journal so the next start
		// recovers from one document instead of a long replay.
		if err := st.Snapshot(schemaReg); err != nil {
			log.Printf("echod: snapshotting store: %v", err)
		}
		if err := st.Close(); err != nil {
			log.Printf("echod: closing store: %v", err)
		}
	}
}
