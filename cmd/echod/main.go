// Command echod runs the event-channel broker daemon: named pub/sub
// channels over TCP with per-subscriber backpressure policies, in-band or
// format-server metadata distribution, and derived channels with
// server-side filters (see internal/echan for the protocol).
//
// With -metrics, an HTTP endpoint serves per-channel depth gauges, fan-out
// latency histograms, and drop counters at /metrics (plain text, or JSON
// with ?format=json).  With -fmtserver, formats published on any channel
// are registered with a format server, and unknown format IDs arriving
// from out-of-band publishers are resolved from it.
//
// Usage:
//
//	echod -addr 127.0.0.1:8801 -metrics 127.0.0.1:8802 [-fmtserver 127.0.0.1:8701] [-queue 64] [-shards N]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"

	"github.com/open-metadata/xmit/internal/echan"
	"github.com/open-metadata/xmit/internal/fmtserver"
	"github.com/open-metadata/xmit/internal/meta"
	"github.com/open-metadata/xmit/internal/obs"
	"github.com/open-metadata/xmit/internal/pbio"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8801", "listen address")
	metricsAddr := flag.String("metrics", "", "serve /metrics on this HTTP address (empty: disabled)")
	fmtsrvAddr := flag.String("fmtserver", "", "format server address for out-of-band metadata (empty: in-band only)")
	queue := flag.Int("queue", 64, "default per-subscriber queue length")
	shards := flag.Int("shards", 0, "default fan-out shards per channel (0: GOMAXPROCS; 1: single-worker fan-out)")
	flag.Parse()

	metrics := obs.Default()
	obs.PublishExpvar("echod", metrics)

	opts := []echan.BrokerOption{
		echan.WithRegistry(metrics),
		echan.WithDefaultQueue(*queue),
	}
	if *shards > 0 {
		opts = append(opts, echan.WithDefaultShards(*shards))
	}
	if *fmtsrvAddr != "" {
		fc := fmtserver.NewClient(*fmtsrvAddr)
		defer fc.Close()
		opts = append(opts,
			echan.WithContext(pbio.NewContext(pbio.WithResolver(fc))),
			echan.WithFormatRegistrar(func(f *meta.Format) error {
				_, err := fc.Register(f)
				return err
			}),
		)
	}
	broker := echan.NewBroker(opts...)

	srv := echan.NewServer(broker)
	bound, err := srv.Listen(*addr)
	if err != nil {
		log.Fatalf("echod: %v", err)
	}
	fmt.Printf("echod: listening on %s\n", bound)
	if *fmtsrvAddr != "" {
		fmt.Printf("echod: registering formats with %s\n", *fmtsrvAddr)
	}

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		go func() {
			fmt.Printf("echod: metrics on http://%s/metrics\n", *metricsAddr)
			log.Fatal(http.ListenAndServe(*metricsAddr, mux))
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("echod: shutting down")
	srv.Close()
	broker.Close()
}
