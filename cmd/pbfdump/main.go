// Command pbfdump inspects self-describing PBIO data files (written by
// internal/iofile, e.g. the Hydrology pipeline's -archive output).  Because
// the file embeds its own metadata, no format knowledge is needed: every
// message decodes as a dynamic record.
//
// Usage:
//
//	pbfdump data.pbf            # one line per message
//	pbfdump -v data.pbf         # full field values
//	pbfdump -formats data.pbf   # just the embedded formats
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"sort"
	"strings"

	"github.com/open-metadata/xmit/internal/iofile"
	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/xmlwire"
)

func main() {
	verbose := flag.Bool("v", false, "print full field values")
	formatsOnly := flag.Bool("formats", false, "list embedded formats and exit")
	asXML := flag.Bool("xml", false, "emit each message as an XML document (the text the paper's Figure 1 compares against)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("pbfdump: need exactly one file argument")
	}

	ctx := pbio.NewContext()
	r, err := iofile.Open(flag.Arg(0), ctx)
	if err != nil {
		log.Fatalf("pbfdump: %v", err)
	}
	defer r.Close()

	counts := map[string]int{}
	n := 0
	for {
		rec, err := r.ReadRecord()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatalf("pbfdump: message %d: %v", n, err)
		}
		n++
		f := rec.Format()
		counts[f.Name]++
		if *formatsOnly {
			continue
		}
		if *asXML {
			enc, err := xmlwire.EncodeRecord(nil, rec)
			if err != nil {
				log.Fatalf("pbfdump: message %d: %v", n, err)
			}
			fmt.Printf("%s\n", enc)
			continue
		}
		if *verbose {
			fmt.Printf("#%d %s (%d bytes fixed, %s layout)\n", n, f.Name, f.Size, f.Platform)
			for _, name := range rec.FieldNames() {
				v, _ := rec.Get(name)
				fmt.Printf("    %-16s %s\n", name, summarize(v))
			}
		} else {
			fmt.Printf("#%-6d %-14s %s\n", n, f.Name, oneLine(rec))
		}
	}

	fmt.Printf("\n%d messages", n)
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %s:%d", name, counts[name])
	}
	fmt.Println()
	if *formatsOnly {
		for _, name := range names {
			f := ctx.FormatByName(name)
			fmt.Println(f.String())
		}
	}
}

// summarize renders a field value, abbreviating long arrays.
func summarize(v any) string {
	switch s := v.(type) {
	case []float64:
		return abbreviateLen(len(s), fmt.Sprintf("%v", head(s, 6)))
	case []int64:
		return abbreviateLen(len(s), fmt.Sprintf("%v", head(s, 6)))
	case []uint64:
		return abbreviateLen(len(s), fmt.Sprintf("%v", head(s, 6)))
	case []*pbio.Record:
		return fmt.Sprintf("[%d records]", len(s))
	case *pbio.Record:
		return "{" + oneLine(s) + "}"
	default:
		return fmt.Sprintf("%v", v)
	}
}

func head[T any](s []T, n int) []T {
	if len(s) > n {
		return s[:n]
	}
	return s
}

func abbreviateLen(n int, shown string) string {
	if n > 6 {
		return fmt.Sprintf("%s... (%d values)", strings.TrimSuffix(shown, "]"), n)
	}
	return shown
}

// oneLine renders the first few scalar fields of a record.
func oneLine(rec *pbio.Record) string {
	var parts []string
	for _, name := range rec.FieldNames() {
		if len(parts) >= 4 {
			parts = append(parts, "...")
			break
		}
		v, ok := rec.Get(name)
		if !ok {
			continue
		}
		switch v.(type) {
		case []float64, []int64, []uint64, []*pbio.Record, []byte, []bool:
			parts = append(parts, fmt.Sprintf("%s=%s", name, summarize(v)))
		default:
			parts = append(parts, fmt.Sprintf("%s=%v", name, v))
		}
	}
	return strings.Join(parts, " ")
}
