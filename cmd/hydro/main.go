// Command hydro runs the Hydrology demonstration application (paper §4.5,
// Figure 5) end to end: data source -> presend -> flow2d solver -> coupler
// -> Vis5D-style sinks, all exchanging PBIO messages whose formats are
// discovered through XMIT — optionally from a remote metadata server.
//
// Usage:
//
//	hydro -nx 64 -ny 64 -steps 50 -sinks 2
//	hydro -schema http://127.0.0.1:8700/hydrology.xsd
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/open-metadata/xmit/internal/hydro"
)

func main() {
	nx := flag.Int("nx", 48, "grid width")
	ny := flag.Int("ny", 48, "grid height")
	steps := flag.Int("steps", 25, "solver steps")
	emit := flag.Int("emit-every", 1, "emit a frame every k steps")
	down := flag.Int("downsample", 1, "presend decimation factor")
	sinks := flag.Int("sinks", 2, "number of visualization sinks")
	seed := flag.Int64("seed", 2001, "terrain seed")
	rain := flag.Float64("rain", 0, "rainfall per step (metres)")
	schema := flag.String("schema", "", "URL of the metadata document (default: embedded)")
	archive := flag.String("archive", "", "write broadcast frames to a PBIO data file (inspect with pbfdump)")
	tcp := flag.Bool("tcp", false, "wire components over loopback TCP instead of in-process pipes")
	mixed := flag.Bool("mixed", false, "give every component a different simulated ABI (heterogeneous machine room)")
	flag.Parse()

	rep, err := hydro.RunPipeline(hydro.PipelineConfig{
		Grid:           hydro.Config{Nx: *nx, Ny: *ny, Seed: *seed, Rain: *rain},
		Steps:          *steps,
		EmitEvery:      *emit,
		Downsample:     *down,
		Sinks:          *sinks,
		SchemaURL:      *schema,
		ArchivePath:    *archive,
		UseTCP:         *tcp,
		MixedPlatforms: *mixed,
	})
	if err != nil {
		log.Fatalf("hydro: %v", err)
	}

	fmt.Printf("hydrology pipeline complete: %d solver steps, %d frames, %d component joins\n",
		rep.StepsRun, rep.FramesEmitted, rep.Joins)
	fmt.Printf("final state: t=%.3f s, mass=%.2f, h in [%.3f, %.3f], courant=%.3f\n",
		rep.FinalMeta.T, rep.FinalMeta.Mass, rep.FinalMeta.HMin, rep.FinalMeta.HMax, rep.FinalMeta.Courant)
	fmt.Printf("control feedback messages delivered to the solver: %d\n", rep.ControlReceived)
	for _, s := range rep.Sinks {
		fmt.Printf("  %-10s frames=%d lastStep=%d h=[%.3f, %.3f]\n",
			s.Name, s.Frames, s.LastStep, s.MinH, s.MaxH)
	}
}
