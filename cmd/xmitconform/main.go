// Command xmitconform drives the differential conformance harness from the
// command line: property-based cross-codec round-trips over every simulated
// platform pair, and the golden wire-vector corpus gated in CI.
//
//	xmitconform                  run the differential suite (500 cases)
//	xmitconform -seed 8 -n 1     replay one failing case deterministically
//	xmitconform -evolve          run the format-evolution axis: policy-admitted
//	                             lineage chains, registry acceptance,
//	                             version-projection round-trips vs the tree
//	                             reference, and a federated mesh leg projecting
//	                             pinned views through a remote registry built
//	                             from the gossiped lineage document
//	xmitconform -check           verify the golden corpus (CI drift gate)
//	xmitconform -update          regenerate the golden corpus after a
//	                             deliberate wire-format change
//
// Any disagreement prints the replay seed and a minimized format XML, so
// every failure is a reproducible one-liner.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/open-metadata/xmit/internal/conform"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "base seed for the differential run (case i uses seed+i)")
		n      = flag.Int("n", 500, "number of random cases to run")
		short  = flag.Bool("short", false, "run the reduced CI subset (64 cases)")
		check  = flag.Bool("check", false, "verify the golden wire-vector corpus and exit")
		update = flag.Bool("update", false, "regenerate the golden wire-vector corpus and exit")
		dir    = flag.String("dir", filepath.Join("internal", "conform", "testdata", "golden"),
			"golden corpus directory")
		seedFuzz = flag.String("seedfuzz", "",
			"write generator-derived fuzz seed corpora under this repository root and exit")
		evolve  = flag.Bool("evolve", false, "run the format-evolution axis instead of the single-format suite")
		steps   = flag.Int("steps", conform.EvolveSteps, "evolution steps per lineage chain (with -evolve)")
		verbose = flag.Bool("v", false, "print per-codec eligibility counts")
	)
	flag.Parse()

	h := conform.NewHarness()
	switch {
	case *seedFuzz != "":
		if err := conform.SeedFuzzCorpora(*seedFuzz, 8); err != nil {
			fatal(err)
		}
		fmt.Printf("fuzz seed corpora written under %s (dom, pbio, echan, conform, discovery, store)\n", *seedFuzz)
	case *update:
		if err := h.WriteGolden(*dir, conform.GoldenCount); err != nil {
			fatal(err)
		}
		fmt.Printf("golden corpus regenerated under %s (%d cases, seed %d)\n",
			*dir, conform.GoldenCount, conform.GoldenSeed)
	case *check:
		mismatches, err := h.CheckGolden(*dir, conform.GoldenCount)
		if err != nil {
			fatal(err)
		}
		if len(mismatches) > 0 {
			for _, m := range mismatches {
				fmt.Fprintln(os.Stderr, m)
			}
			fatal(fmt.Errorf("%d golden vector mismatch(es); wire format drifted "+
				"(regenerate deliberately with xmitconform -update)", len(mismatches)))
		}
		fmt.Printf("golden corpus verified: %d cases x %d codec/platform files, no drift\n",
			conform.GoldenCount, len(conform.Platforms())*6)
	case *evolve:
		count := *n
		if *short {
			count = 64
		}
		st, err := h.RunEvolve(*seed, count, *steps)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("conform: evolve axis: %d chains x %d steps, %d projection legs, %d mesh legs, %d wire ops, 0 disagreements\n",
			st.Chains, st.Steps, st.Pairs, st.MeshLegs, st.Checks)
	default:
		count := *n
		if *short {
			count = 64
		}
		st, err := h.Run(*seed, count)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("conform: %d specs x %d platform pairs, %d codec legs, 0 disagreements\n",
			st.Specs, st.Pairs, st.Checks)
		if *verbose {
			names := make([]string, 0, len(st.Eligible))
			for name := range st.Eligible {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Printf("  %-12s eligible for %d/%d specs\n", name, st.Eligible[name], st.Specs)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmitconform:", err)
	os.Exit(1)
}
