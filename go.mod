module github.com/open-metadata/xmit

go 1.23
