// Heterogeneous exchange: a big-endian 32-bit sender (the paper's SPARC
// testbed) talks to a little-endian 64-bit receiver.  The sender transmits
// in its native layout; the receiver's conversion plan bridges byte order,
// pointer width, and "unsigned long" size differences — PBIO's
// receiver-makes-right discipline.
package main

import (
	"fmt"
	"log"

	"github.com/open-metadata/xmit/internal/core"
	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/platform"
	"github.com/open-metadata/xmit/internal/transport"
)

const schema = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Telemetry">
    <xsd:element name="node" type="xsd:string" />
    <xsd:element name="address" type="xsd:unsignedLong" />
    <xsd:element name="sequence" type="xsd:integer" />
    <xsd:element name="load" type="xsd:double" />
    <xsd:element name="readings" type="xsd:float" minOccurs="0" maxOccurs="*"
        dimensionPlacement="before" dimensionName="count" />
  </xsd:complexType>
</xsd:schema>`

type Telemetry struct {
	Node     string
	Address  uint64 // wire: 4-byte unsigned long on sparc32
	Sequence int32
	Load     float64
	Readings []float32
}

func main() {
	// Each side is its own process in spirit: separate toolkit, separate
	// context, different simulated platform.
	senderTk := core.NewToolkit()
	if _, err := senderTk.LoadString(schema); err != nil {
		log.Fatal(err)
	}
	senderCtx := pbio.NewContext(pbio.WithPlatform(platform.Sparc32))
	tok, err := senderTk.Register("Telemetry", senderCtx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sender (sparc32, big-endian): %d-byte struct, 4-byte pointers\n", tok.Format.Size)

	receiverCtx := pbio.NewContext(pbio.WithPlatform(platform.X8664))
	sendConn, recvConn := transport.Pipe(senderCtx, receiverCtx)
	defer sendConn.Close()
	defer recvConn.Close()

	go func() {
		b, err := senderCtx.Bind(tok.Format, &Telemetry{})
		if err != nil {
			log.Fatal(err)
		}
		msg := Telemetry{
			Node: "ultra1-170", Address: 0xFEEDFACE, Sequence: -17,
			Load: 0.73, Readings: []float32{1.5, -2.25, 3.125},
		}
		if err := sendConn.Send(b, &msg); err != nil {
			log.Fatal(err)
		}
	}()

	// The receiver needs no prior knowledge: the wire format arrives
	// in-band, the conversion plan is compiled on first contact.
	var out Telemetry
	wire, err := recvConn.Recv(&out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("receiver (x86_64, little-endian) got a %q message laid out for %s\n",
		wire.Name, wire.Platform)
	fmt.Printf("decoded: %+v\n", out)
	if out.Address != 0xFEEDFACE || out.Sequence != -17 {
		log.Fatal("conversion failed")
	}
	fmt.Println("byte order, word size, and layout all bridged by the receiver's plan")
}
