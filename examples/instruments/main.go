// Instruments: the paper's motivating scenario of remote instruments
// feeding a distributed workspace, exercising the toolkit's run-time
// facilities together — enumerations with symbolic values, dynamic records
// for message types the consumer was never compiled against, and a
// metadata watcher that picks up centrally published format changes while
// the feed is live.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"github.com/open-metadata/xmit/internal/core"
	"github.com/open-metadata/xmit/internal/discovery"
	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/transport"
)

const instrumentsV1 = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="Status">
    <xsd:restriction base="xsd:string">
      <xsd:enumeration value="nominal" />
      <xsd:enumeration value="degraded" />
      <xsd:enumeration value="offline" />
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:complexType name="Observation">
    <xsd:element name="instrument" type="xsd:string" />
    <xsd:element name="status" type="Status" />
    <xsd:element name="samples" type="xsd:double" minOccurs="0" maxOccurs="*"
        dimensionPlacement="before" dimensionName="count" />
  </xsd:complexType>
</xsd:schema>`

// v2 adds a calibration field — published mid-run.
const instrumentsV2 = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:simpleType name="Status">
    <xsd:restriction base="xsd:string">
      <xsd:enumeration value="nominal" />
      <xsd:enumeration value="degraded" />
      <xsd:enumeration value="offline" />
    </xsd:restriction>
  </xsd:simpleType>
  <xsd:complexType name="Observation">
    <xsd:element name="instrument" type="xsd:string" />
    <xsd:element name="status" type="Status" />
    <xsd:element name="calibration" type="xsd:float" />
    <xsd:element name="samples" type="xsd:double" minOccurs="0" maxOccurs="*"
        dimensionPlacement="before" dimensionName="count" />
  </xsd:complexType>
</xsd:schema>`

func main() {
	// The observatory publishes its formats.
	docs := discovery.NewDocServer()
	docs.Publish("instruments.xsd", []byte(instrumentsV1))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, docs)
	url := "http://" + ln.Addr().String() + "/instruments.xsd"

	// The instrument-side toolkit watches that URL for changes.
	tk := core.NewToolkit()
	formatChanged := make(chan struct{}, 1)
	watcher, err := tk.Watch(10*time.Millisecond, func(ev core.WatchEvent) {
		if ev.Err == nil {
			fmt.Println("watcher: metadata changed, types:", ev.Types)
			select {
			case formatChanged <- struct{}{}:
			default:
			}
		}
	}, url)
	if err != nil {
		log.Fatal(err)
	}
	defer watcher.Close()

	sender := pbio.NewContext()
	receiver := pbio.NewContext()
	sConn, rConn := transport.Pipe(sender, receiver)
	defer sConn.Close()
	defer rConn.Close()

	status := tk.Enum("Status")
	send := func(tag string, calibration float32) {
		tok, err := tk.Register("Observation", sender)
		if err != nil {
			log.Fatal(err)
		}
		rec := pbio.NewRecord(tok.Format)
		rec.Set("instrument", "microscope-"+tag)
		rec.Set("status", status.Index("nominal"))
		rec.Set("samples", []float64{1.25, 1.5, 1.75})
		if tok.Format.FieldByName("calibration") >= 0 {
			rec.Set("calibration", calibration)
		}
		if err := sConn.SendRecord(rec); err != nil {
			log.Fatal(err)
		}
	}

	// The consumer is fully dynamic: it was compiled against nothing.
	receive := func() {
		rec, err := rConn.RecvRecord()
		if err != nil {
			log.Fatal(err)
		}
		inst, _ := rec.Get("instrument")
		st, _ := rec.Get("status")
		line := fmt.Sprintf("observation from %v: status=%s", inst, status.Value(int(st.(uint64))))
		if cal, ok := rec.Get("calibration"); ok && rec.Format().FieldByName("calibration") >= 0 {
			line += fmt.Sprintf(" calibration=%.2f", cal)
		}
		samples, _ := rec.Get("samples")
		fmt.Printf("%s samples=%v\n", line, samples)
	}

	go send("A", 0)
	receive()

	// Mid-run, the observatory evolves the format.
	docs.Publish("instruments.xsd", []byte(instrumentsV2))
	select {
	case <-formatChanged:
	case <-time.After(5 * time.Second):
		log.Fatal("watcher missed the change")
	}

	go send("A", 0.98)
	receive()
	fmt.Println("the feed evolved mid-run; neither side was recompiled or restarted")
}
