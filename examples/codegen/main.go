// Codegen: translate remotely defined metadata into Go source — the Go
// analogue of XMIT's Java source/bytecode generation.  The printed file
// compiles into an application and binds directly to PBIO formats via its
// `xmit` tags.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/open-metadata/xmit/internal/core"
	"github.com/open-metadata/xmit/internal/hydro"
	"github.com/open-metadata/xmit/internal/platform"
)

func main() {
	tk := core.NewToolkit()
	names, err := tk.LoadString(hydro.SchemaDocument)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %v from the Hydrology schema document\n", names)

	// Generate for two different ABIs to show the mapping is
	// platform-relative (xsd:unsignedLong is 4 bytes on sparc32 and 8 on
	// x86_64).
	for _, p := range []*platform.Platform{platform.Sparc32, platform.X8664} {
		src, err := tk.GenerateGo("messages", []string{"JoinRequest"}, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("// ---- generated for %s ----\n%s\n", p, src)
	}

	// The full document, generated once for the host-like platform.
	src, err := tk.GenerateGo("messages", nil, platform.X8664)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("// ---- all Hydrology message types (x86_64) ----\n%s", src)
}
