// Directory: the out-of-band discovery mode.  Senders register formats with
// a format server; the data connection carries only 8-byte format IDs, and
// receivers resolve unknown IDs against the server.  Swapping this in for
// in-band announcements changes *discovery only* — binding and marshaling
// are untouched, the orthogonality the paper's Section 2 argues for.
package main

import (
	"fmt"
	"log"

	"github.com/open-metadata/xmit/internal/core"
	"github.com/open-metadata/xmit/internal/fmtserver"
	"github.com/open-metadata/xmit/internal/pbio"
	"github.com/open-metadata/xmit/internal/platform"
	"github.com/open-metadata/xmit/internal/transport"
)

const schema = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Sample">
    <xsd:element name="id" type="xsd:integer" />
    <xsd:element name="value" type="xsd:double" />
    <xsd:element name="tag" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>`

type Sample struct {
	Id    int32
	Value float64
	Tag   string
}

func main() {
	// A format server, as cmd/fmtserver would run it.
	srv := fmtserver.NewServer(nil)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("format server at", addr)

	// Sender: XMIT-translate the schema, publish the format.
	tk := core.NewToolkit()
	if _, err := tk.LoadString(schema); err != nil {
		log.Fatal(err)
	}
	senderCtx := pbio.NewContext(pbio.WithPlatform(platform.Sparc32))
	tok, err := tk.Register("Sample", senderCtx)
	if err != nil {
		log.Fatal(err)
	}
	pub := fmtserver.NewClient(addr)
	defer pub.Close()
	id, err := pub.Register(tok.Format)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("published format", id)

	// Receiver: no local formats; resolves through the server.
	sub := fmtserver.NewClient(addr)
	defer sub.Close()
	recvCtx := pbio.NewContext(pbio.WithResolver(sub))

	send, recv := transport.Pipe(senderCtx, recvCtx, transport.WithMode(transport.OutOfBand))
	defer send.Close()
	defer recv.Close()

	go func() {
		b, err := senderCtx.Bind(tok.Format, &Sample{})
		if err != nil {
			log.Fatal(err)
		}
		for i := 1; i <= 3; i++ {
			if err := send.Send(b, &Sample{Id: int32(i), Value: float64(i) * 1.5, Tag: "dir"}); err != nil {
				log.Fatal(err)
			}
		}
	}()

	for i := 0; i < 3; i++ {
		var out Sample
		wire, err := recv.Recv(&out)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("received %+v (format %q resolved via directory)\n", out, wire.Name)
	}
}
