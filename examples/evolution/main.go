// Evolution: the payoff of open metadata.  A message format is published on
// an HTTP metadata server; the sender picks up a centrally published format
// change at run time (no recompilation), and receivers built against the
// old format keep working — added fields are skipped for old receivers and
// zeroed for new receivers of old messages.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"github.com/open-metadata/xmit/internal/core"
	"github.com/open-metadata/xmit/internal/discovery"
	"github.com/open-metadata/xmit/internal/pbio"
)

const schemaV1 = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Alert">
    <xsd:element name="seq" type="xsd:integer" />
    <xsd:element name="level" type="xsd:integer" />
  </xsd:complexType>
</xsd:schema>`

const schemaV2 = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Alert">
    <xsd:element name="seq" type="xsd:integer" />
    <xsd:element name="level" type="xsd:integer" />
    <xsd:element name="source" type="xsd:string" />
    <xsd:element name="severity" type="xsd:float" />
  </xsd:complexType>
</xsd:schema>`

// AlertV1 is what the old receiver was compiled with.
type AlertV1 struct {
	Seq   int32
	Level int32
}

// AlertV2 is the evolved shape.
type AlertV2 struct {
	Seq      int32
	Level    int32
	Source   string
	Severity float32
}

func main() {
	// Publish v1 on a local metadata server.
	docs := discovery.NewDocServer()
	docs.Publish("alert.xsd", []byte(schemaV1))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, docs)
	url := "http://" + ln.Addr().String() + "/alert.xsd"
	fmt.Println("metadata served at", url)

	// The sender discovers the format remotely.
	senderTk := core.NewToolkit()
	if _, err := senderTk.LoadURL(url); err != nil {
		log.Fatal(err)
	}
	senderCtx := pbio.NewContext()
	tokV1, err := senderTk.Register("Alert", senderCtx)
	if err != nil {
		log.Fatal(err)
	}
	bV1, err := senderCtx.Bind(tokV1.Format, &AlertV1{})
	if err != nil {
		log.Fatal(err)
	}
	msg1, err := bV1.Encode(&AlertV1{Seq: 1, Level: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sent v1 message (%d bytes, format %s)\n", len(msg1), tokV1.ID)

	// --- The format owner publishes v2 centrally. ---
	docs.Publish("alert.xsd", []byte(schemaV2))
	fmt.Println("\nformat owner published an evolved Alert (adds source, severity)")

	// The long-running sender refreshes — no recompile, no redeploy.
	changed, _, err := senderTk.RefreshURL(url)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sender refresh detected change:", changed)
	tokV2, err := senderTk.Register("Alert", senderCtx)
	if err != nil {
		log.Fatal(err)
	}
	bV2, err := senderCtx.Bind(tokV2.Format, &AlertV2{})
	if err != nil {
		log.Fatal(err)
	}
	msg2, err := bV2.Encode(&AlertV2{Seq: 2, Level: 5, Source: "gauge-12", Severity: 0.9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sent v2 message (%d bytes, format %s)\n", len(msg2), tokV2.ID)

	// An OLD receiver (knows only AlertV1) decodes the NEW message: the
	// added fields are skipped by the conversion plan.
	oldReceiver := pbio.NewContext()
	if _, err := oldReceiver.RegisterFormat(tokV2.Format); err != nil { // learned in-band in a real exchange
		log.Fatal(err)
	}
	var old AlertV1
	if _, err := oldReceiver.Decode(msg2, &old); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nold receiver decoded v2 message: %+v (new fields skipped)\n", old)

	// A NEW receiver decodes the OLD message: missing fields zero.
	newReceiver := pbio.NewContext()
	if _, err := newReceiver.RegisterFormat(tokV1.Format); err != nil {
		log.Fatal(err)
	}
	fresh := AlertV2{Source: "stale", Severity: -1}
	if _, err := newReceiver.Decode(msg1, &fresh); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new receiver decoded v1 message: %+v (added fields zeroed)\n", fresh)
}
