// Hydrology: the paper's demonstration application (§4.5), restructured
// around the event-channel broker.  The solver publishes frames to a named
// channel on an in-process echod-style broker; visualization sinks are TCP
// subscribers that join and leave independently — including one that joins
// mid-stream and decodes immediately thanks to in-band format replay — and
// a derived channel applies a server-side filter so a late-phase sink only
// sees the frames it asked for.  The message formats are still discovered
// from a live HTTP metadata server, exactly as the paper deploys them.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"github.com/open-metadata/xmit/internal/core"
	"github.com/open-metadata/xmit/internal/discovery"
	"github.com/open-metadata/xmit/internal/echan"
	"github.com/open-metadata/xmit/internal/hydro"
	"github.com/open-metadata/xmit/internal/pbio"
)

const (
	frameChannel = "hydro.frames"
	hotChannel   = "hydro.hot"
	hotFilter    = "timestep >= 15"

	steps      = 30
	emitEvery  = 3
	lateJoinAt = 15 // solver step after which the late sink subscribes
)

type sinkReport struct {
	name       string
	frames     int // SimpleData frames decoded
	metas      int // GridMeta messages decoded
	firstStep  int32
	lastStep   int32
	minH, maxH float32
	err        error
}

// runSink subscribes to a broker channel with a fresh PBIO context (all
// metadata arrives in-band) and renders frames until the publisher's
// shutdown control message, then unsubscribes and drains to EOF.
func runSink(name, addr, channel string, policy echan.Policy, queue int) sinkReport {
	rep := sinkReport{name: name, firstStep: -1}
	sub, err := echan.DialSubscriber(addr, channel, policy, queue, pbio.NewContext())
	if err != nil {
		rep.err = err
		return rep
	}
	defer sub.Close()
	for {
		f, body, err := sub.RecvMessage()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				rep.err = err
			}
			return rep
		}
		switch f.Name {
		case "SimpleData":
			var d hydro.SimpleData
			if rep.err = sub.Context().DecodeBody(f, body, &d); rep.err != nil {
				return rep
			}
			if rep.frames == 0 {
				rep.firstStep = d.Timestep
				rep.minH, rep.maxH = d.Data[0], d.Data[0]
			}
			rep.frames++
			rep.lastStep = d.Timestep
			for _, h := range d.Data {
				if h < rep.minH {
					rep.minH = h
				}
				if h > rep.maxH {
					rep.maxH = h
				}
			}
		case "GridMeta":
			rep.metas++
		case "ControlMsg":
			var c hydro.ControlMsg
			if rep.err = sub.Context().DecodeBody(f, body, &c); rep.err != nil {
				return rep
			}
			if c.Command == hydro.CmdShutdown {
				// Detach; the broker drains our queue and closes the stream.
				if rep.err = sub.Unsubscribe(); rep.err != nil {
					return rep
				}
			}
		}
	}
}

func main() {
	// Host the schema document, as the paper's Apache server does.
	docs := discovery.NewDocServer()
	docs.Publish("hydrology.xsd", []byte(hydro.SchemaDocument))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, docs)
	url := "http://" + ln.Addr().String() + "/hydrology.xsd"
	fmt.Println("hydrology formats served at", url)

	// The broker: named channels over TCP, like running cmd/echod.  Fan-out
	// is sharded across the cores so many sinks don't serialise behind one
	// offer loop (echod's -shards knob; GOMAXPROCS is also the default).
	srv := echan.NewServer(echan.NewBroker(echan.WithDefaultShards(runtime.GOMAXPROCS(0))))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		srv.Close()
		srv.Broker().Close()
	}()
	fmt.Println("event-channel broker at", addr)

	// Channel layout: raw frames plus a derived channel whose server-side
	// filter passes only the late simulation phase.
	ctl, err := echan.DialControl(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()
	if err := ctl.Create(frameChannel); err != nil {
		log.Fatal(err)
	}
	if err := ctl.Derive(hotChannel, frameChannel, hotFilter); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("derived channel %s = %s where %q\n\n", hotChannel, frameChannel, hotFilter)

	// The solver discovers its formats over HTTP and publishes through the
	// broker.  Sinks attach with fresh contexts: vis-main is there from the
	// start, vis-late joins mid-stream, vis-hot watches the derived channel.
	tk := core.NewToolkit()
	ctx := pbio.NewContext()
	fmts, err := hydro.LoadFormats(tk, url, ctx)
	if err != nil {
		log.Fatal(err)
	}
	pub, err := echan.DialPublisher(addr, frameChannel, ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer pub.Close()

	dataBind, err := ctx.Bind(fmts.SimpleData, &hydro.SimpleData{})
	if err != nil {
		log.Fatal(err)
	}
	metaBind, err := ctx.Bind(fmts.GridMeta, &hydro.GridMeta{})
	if err != nil {
		log.Fatal(err)
	}
	ctrlBind, err := ctx.Bind(fmts.ControlMsg, &hydro.ControlMsg{})
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	reports := make(chan sinkReport, 3)
	launch := func(name, channel string, policy echan.Policy, queue int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports <- runSink(name, addr, channel, policy, queue)
		}()
	}
	// The broker does not replay event data — only format announcements — so
	// a sink must be attached before the frames it wants are published.
	// waitSubs is the application-level barrier: poll the channel's
	// subscriber gauge over the control connection.
	waitSubs := func(channel string, n int64) {
		for {
			st, err := ctl.Stats(channel)
			if err != nil {
				log.Fatal(err)
			}
			if st.Subscribers >= n {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	launch("vis-main", frameChannel, echan.Block, 0)
	launch("vis-hot", hotChannel, echan.Block, 0)
	waitSubs(frameChannel, 1)
	waitSubs(hotChannel, 1)

	sim, err := hydro.NewSim(hydro.Config{Nx: 64, Ny: 48, Seed: 1849, Rain: 0.0002})
	if err != nil {
		log.Fatal(err)
	}
	frames, lateJoined := 0, false
	for step := 1; step <= steps; step++ {
		sim.StepOnce()
		if step > lateJoinAt && !lateJoined {
			// Mid-stream joiner: its first data frame is preceded, in-band,
			// by every format announcement it missed.
			launch("vis-late", frameChannel, echan.DropOldest, 8)
			waitSubs(frameChannel, 2)
			lateJoined = true
		}
		if step%emitEvery != 0 {
			continue
		}
		cfg := sim.Config()
		field, nx, ny, err := hydro.Downsample(sim.HeightField(), cfg.Nx, cfg.Ny, 2)
		if err != nil {
			log.Fatal(err)
		}
		_ = ny
		if err := pub.Send(dataBind, &hydro.SimpleData{
			Timestep: int32(step), Size: int32(len(field)), Data: field,
		}); err != nil {
			log.Fatal(err)
		}
		gm := sim.Meta(int32(frames))
		gm.Nx = int32(nx)
		if err := pub.Send(metaBind, &gm); err != nil {
			log.Fatal(err)
		}
		frames++
	}
	// Shutdown rides the data channel as a control message; its timestep
	// clears the derived filter so the hot sink hears it too.
	if err := pub.Send(ctrlBind, &hydro.ControlMsg{Command: hydro.CmdShutdown, Timestep: steps + 1}); err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	close(reports)

	fmt.Printf("solver: %d steps, %d frames published via %s\n\n", steps, frames, frameChannel)
	for rep := range reports {
		if rep.err != nil {
			log.Fatalf("sink %s: %v", rep.name, rep.err)
		}
		fmt.Printf("  %-9s %2d frames (steps %d..%d), %2d metadata msgs, h range [%.3f, %.3f]\n",
			rep.name, rep.frames, rep.firstStep, rep.lastStep, rep.metas, rep.minH, rep.maxH)
	}

	names, err := ctl.List()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbroker channel stats:")
	for _, name := range names {
		st, err := ctl.Stats(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s published=%d delivered=%d dropped_oldest=%d dropped_newest=%d block_waits=%d\n",
			name, st.Published, st.Delivered, st.DroppedOldest, st.DroppedNewest, st.BlockWaits)
	}
}
