// Hydrology: the paper's demonstration application (§4.5) driven through
// the public pipeline API, with the message formats discovered from a live
// HTTP metadata server — exactly the deployment the paper describes, in one
// process.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"github.com/open-metadata/xmit/internal/discovery"
	"github.com/open-metadata/xmit/internal/hydro"
)

func main() {
	// Host the schema document, as the paper's Apache server does.
	docs := discovery.NewDocServer()
	docs.Publish("hydrology.xsd", []byte(hydro.SchemaDocument))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, docs)
	url := "http://" + ln.Addr().String() + "/hydrology.xsd"
	fmt.Println("hydrology formats served at", url)

	// Every component discovers its metadata from that URL at startup.
	rep, err := hydro.RunPipeline(hydro.PipelineConfig{
		Grid:       hydro.Config{Nx: 64, Ny: 48, Seed: 1849, Rain: 0.0002},
		Steps:      30,
		EmitEvery:  3,
		Downsample: 2,
		Sinks:      3,
		SchemaURL:  url,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\npipeline: %d steps, %d frames emitted, %d joins, %d control messages\n",
		rep.StepsRun, rep.FramesEmitted, rep.Joins, rep.ControlReceived)
	fmt.Printf("solver grid after presend decimation: %dx%d\n", rep.FinalMeta.Nx, rep.FinalMeta.Ny)
	fmt.Printf("final water: mass=%.2f, h=[%.3f, %.3f], courant=%.3f\n",
		rep.FinalMeta.Mass, rep.FinalMeta.HMin, rep.FinalMeta.HMax, rep.FinalMeta.Courant)
	for _, s := range rep.Sinks {
		fmt.Printf("  %-10s rendered %d frames, h range [%.3f, %.3f]\n",
			s.Name, s.Frames, s.MinH, s.MaxH)
	}
}
