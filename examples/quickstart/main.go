// Quickstart: define a message format in XML Schema, discover it with the
// XMIT toolkit, translate it to native binary metadata, and exchange a
// message — the whole decomposition (discovery, binding, marshaling) in one
// file.
//
// By default the schema is inline.  With -url, the same schema is
// discovered remotely (run `mdserver` and point -url at its
// /quickstart.xsd), exercising the cached, retrying, coalescing fetch path
// and its metrics; with -fmtserver, the translated format is also
// registered with a running format server so its /metrics endpoint shows
// the registration.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/open-metadata/xmit/internal/core"
	"github.com/open-metadata/xmit/internal/fmtserver"
	"github.com/open-metadata/xmit/internal/pbio"
)

// The metadata lives outside the program — here an inline document, but a
// URL works identically (see -url and examples/hydrology).
const schema = `<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Reading">
    <xsd:element name="station" type="xsd:string" />
    <xsd:element name="timestamp" type="xsd:unsignedLong" />
    <xsd:element name="temperature" type="xsd:float" />
    <xsd:element name="samples" type="xsd:double" minOccurs="0" maxOccurs="*"
        dimensionPlacement="before" dimensionName="nsamples" />
  </xsd:complexType>
</xsd:schema>`

// Reading is the program's view of the message.  Fields match the schema's
// element names (case-insensitively, or by `xmit` tags); the synthesized
// "nsamples" length field needs no Go counterpart.
type Reading struct {
	Station     string
	Timestamp   uint64
	Temperature float32
	Samples     []float64
}

func main() {
	url := flag.String("url", "", "discover the schema from this URL instead of the inline document (e.g. http://127.0.0.1:8700/quickstart.xsd)")
	fmtsrv := flag.String("fmtserver", "", "also register the format with the format server at this address (e.g. 127.0.0.1:8701)")
	showMetrics := flag.Bool("metrics", false, "print the toolkit's discovery/registration metrics before exiting")
	flag.Parse()

	// 1. Discovery: load the metadata document.
	tk := core.NewToolkit()
	var names []string
	var err error
	if *url != "" {
		if names, err = tk.LoadURL(*url); err != nil {
			log.Fatal(err)
		}
		// Load again: the second pass is served from the repository cache,
		// which the discovery_cache_hit_total metric records.
		if _, err = tk.LoadURL(*url); err != nil {
			log.Fatal(err)
		}
	} else if names, err = tk.LoadString(schema); err != nil {
		log.Fatal(err)
	}
	fmt.Println("discovered formats:", names)

	// 2. Binding: translate to native metadata and register with the BCM.
	ctx := pbio.NewContext()
	tok, err := tk.Register("Reading", ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %q: %d-byte native layout, format ID %s\n",
		tok.TypeName, tok.Format.Size, tok.ID)

	if *fmtsrv != "" {
		client := fmtserver.NewClient(*fmtsrv)
		id, err := client.Register(tok.Format)
		if err != nil {
			log.Fatal(err)
		}
		client.Close()
		fmt.Printf("registered with format server %s as %s\n", *fmtsrv, id)
	}

	binding, err := ctx.Bind(tok.Format, &Reading{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Marshaling: binary encode and decode.
	in := Reading{
		Station:     "chattahoochee-gauge-7",
		Timestamp:   993945600,
		Temperature: 23.5,
		Samples:     []float64{1.25, 1.3, 1.27, 1.31},
	}
	msg, err := binding.Encode(&in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d bytes (binary, not XML text)\n", len(msg))

	var out Reading
	if _, err := ctx.Decode(msg, &out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded: %+v\n", out)

	// 4. Steady-state marshaling: the pooled, zero-allocation API.  A
	// long-running component checks a buffer out of the shared pool and
	// re-encodes into it for its whole message stream; EncodeTo reuses the
	// backing array, so warm sends allocate nothing (the pbio_pool_*
	// metrics in -metrics output record the pool's hit rate).
	buf := pbio.GetBuffer()
	for i := 0; i < 3; i++ {
		in.Timestamp++
		if buf.B, err = binding.EncodeTo(buf.B, &in); err != nil {
			log.Fatal(err)
		}
		if _, err := ctx.Decode(buf.B, &out); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("pooled re-encode x3: %d bytes each, no per-message allocation\n", len(buf.B))
	buf.Release()

	// Bonus: the same message read with no compiled struct at all.
	rec, err := ctx.DecodeRecord(msg)
	if err != nil {
		log.Fatal(err)
	}
	temp, _ := rec.Get("temperature")
	n, _ := rec.Get("nsamples")
	fmt.Printf("as a dynamic record: temperature=%v, nsamples=%v\n", temp, n)

	if *showMetrics {
		fmt.Println("-- metrics --")
		tk.Metrics().WriteText(os.Stdout)
	}
}
